"""Command-line entry point: experiments plus the streaming runtime.

Usage::

    python -m repro list                # available experiments
    python -m repro --list              # same, as a flag
    python -m repro fig5                # one experiment
    python -m repro all                 # everything (a few minutes)
    REPRO_SCALE=8 python -m repro fig5  # paper-scale aggregation run

    python -m repro loadtest --rate 50 --duration 600 --seed 42
    python -m repro serve --rate 20 --duration 2880 --report-every 96
    python -m repro serve --driver wallclock --slices-per-second 8 --duration 96
    python -m repro loadtest --config run.json --seed 7   # flags beat the file
    python -m repro loadtest --brps 4 --rate 50 --duration 192   # cluster + TSO
    python -m repro serve --cluster cluster.json --report-every 96

    python -m repro loadtest --brps 4 --trace run.jsonl   # structured event log
    python -m repro inspect run.jsonl                     # per-stage breakdown
    python -m repro inspect run.jsonl --offer 42          # one offer's chain
    python -m repro loadtest --metrics --metrics-format prometheus
    python -m repro loadtest --metrics-json metrics.json

    python -m repro loadtest --ledger led/ --duplicate-rate 0.1   # durable + chaos
    python -m repro loadtest --brps 3 --ledger led/ --outage brp-1:20:36

Engine/scheduler/driver names are resolved through the
:mod:`repro.api.registry`; unknown names exit ``2`` with the known set.

Exit codes: ``0`` success, ``1`` an experiment raised, ``2`` unknown
experiment/engine/driver name or bad config file (argparse usage errors
also exit ``2``).
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import Callable

from .experiments import (
    run_aggregation_scheduling_interplay,
    run_balancing,
    run_exhaustive,
    run_fig4a,
    run_fig4b,
    run_fig5,
    run_fig6,
    run_forecast_scheduling_interplay,
    run_pubsub_savings,
)
from .experiments.ablations import (
    run_flexibility_influence,
    run_hybrid_scheduling,
    run_price_grouping,
)
from .experiments.hierarchy_forecasting import run_hierarchy_forecasting

EXIT_OK = 0
EXIT_EXPERIMENT_FAILED = 1
EXIT_UNKNOWN_EXPERIMENT = 2

EXPERIMENTS: dict[str, tuple[Callable[[], object], str]] = {
    "fig4a": (run_fig4a, "estimator accuracy vs estimation time (Fig. 4a)"),
    "fig4b": (run_fig4b, "forecast accuracy vs horizon, demand vs wind (Fig. 4b)"),
    "fig5": (run_fig5, "aggregation: compression / time / loss / disagg (Fig. 5)"),
    "fig6": (run_fig6, "scheduling cost over time, GS vs EA (Fig. 6)"),
    "exhaustive": (run_exhaustive, "exhaustive optimum vs metaheuristics (§6)"),
    "balancing": (run_balancing, "end-to-end balancing day (Fig. 1)"),
    "interplay-agg": (
        run_aggregation_scheduling_interplay,
        "aggregation thresholds vs scheduling (§8)",
    ),
    "interplay-forecast": (
        run_forecast_scheduling_interplay,
        "forecast error vs schedule cost (§8)",
    ),
    "pubsub": (run_pubsub_savings, "publish-subscribe notification savings (§5)"),
    "hierarchy": (
        run_hierarchy_forecasting,
        "hierarchical forecasting advisor (§5)",
    ),
    "flexibility": (
        run_flexibility_influence,
        "start-time flexibility vs scheduling difficulty (§6 direction)",
    ),
    "hybrid": (run_hybrid_scheduling, "greedy-seeded hybrid EA (§6 direction)"),
    "price-grouping": (
        run_price_grouping,
        "price-aware aggregation grouping (§4 direction)",
    ),
}

#: Runtime subcommands handled by their own parsers (not experiment names).
RUNTIME_COMMANDS: dict[str, str] = {
    "serve": "run the streaming BRP service loop",
    "loadtest": "replay a Poisson offer stream and report",
    "inspect": "per-stage/per-BRP breakdown (or one offer's chain) of a trace",
}


def _print_registry() -> None:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_, description) in EXPERIMENTS.items():
        print(f"{name.ljust(width)}  {description}")
    width = max(len(name) for name in RUNTIME_COMMANDS)
    print()
    print("runtime subcommands (see --help of each):")
    for name, description in RUNTIME_COMMANDS.items():
        print(f"{name.ljust(width)}  {description}")
    from .api import default_registry

    print()
    print("registry (kind  name  [capabilities]  description):")
    print(default_registry().render())


# ----------------------------------------------------------------------
# runtime subcommands
# ----------------------------------------------------------------------
def _runtime_parser(command: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"python -m repro {command}",
        description=(
            "Run the event-driven BRP runtime against a Poisson flex-offer "
            "stream (simulated time by default — deterministic for a fixed "
            "seed — or real time via --driver wallclock)."
        ),
    )
    parser.add_argument(
        "--config", metavar="FILE.json", default=None,
        help=(
            "JSON file of defaults for any of these flags (keys are the "
            "flag names with '-' as '_'); explicit flags win over the file"
        ),
    )
    parser.add_argument(
        "--rate", type=float, default=50.0,
        help="mean offer arrivals per simulated hour (default 50)",
    )
    parser.add_argument(
        "--duration", type=float, default=600.0,
        help="simulated slices to run (default 600 = 6.25 days at 15 min)",
    )
    parser.add_argument("--seed", type=int, default=42, help="stream + scheduler seed")
    parser.add_argument(
        "--batch", type=int, default=64,
        help="pending updates per incremental aggregation run",
    )
    parser.add_argument(
        "--horizon", type=int, default=192,
        help="rolling scheduling horizon in slices",
    )
    parser.add_argument(
        "--passes", type=int, default=2, help="greedy passes per scheduling run"
    )
    parser.add_argument(
        "--trigger-count", type=int, default=200,
        help="offers since last run that force a scheduling run",
    )
    parser.add_argument(
        "--trigger-age", type=float, default=16.0,
        help="max slices an offer may wait unscheduled",
    )
    parser.add_argument(
        "--trigger-imbalance", type=float, default=2000.0,
        help="unscheduled kWh that force a scheduling run",
    )
    parser.add_argument(
        "--trigger", metavar="SPEC", action="append", default=None,
        help="trigger policy spec 'kind' or 'kind:key=val,...' by registry "
        "name (e.g. 'count:threshold=100', 'adaptive:target_p95_slices=8'); "
        "repeatable — multiple specs combine with the 'any' composite and "
        "replace the default count/age/imbalance triple",
    )
    parser.add_argument(
        "--target-p95-slices", type=float, default=None,
        help="closed-loop latency target: auto-tune the BRP trigger "
        "thresholds and the TSO re-run cooldown toward this p95 (slices)",
    )
    parser.add_argument(
        "--min-run-interval", type=float, default=2.0,
        help="cooldown between scheduling runs (slices)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="ingest pipelines the stream is hash-partitioned over",
    )
    parser.add_argument(
        "--engine", default="packed",
        help="aggregation engine, by registry name (see repro.api.registry)",
    )
    parser.add_argument(
        "--scheduler", default="greedy",
        help="scheduling engine, by registry name (needs the 'runtime' "
        "capability)",
    )
    parser.add_argument(
        "--driver", default="simulated",
        help="time driver, by registry name: 'simulated' (deterministic) "
        "or 'wallclock' (real time)",
    )
    parser.add_argument(
        "--slices-per-second", type=float, default=4.0,
        help="wallclock driver pacing: slice units per wall second "
        "(ignored for --driver simulated)",
    )
    parser.add_argument(
        "--brps", type=int, default=1,
        help="run a multi-node cluster of this many identically configured "
        "BRPs plus a TSO tier over the message bus (1 = single service)",
    )
    parser.add_argument(
        "--cluster", metavar="FILE.json", default=None,
        help="JSON cluster config (per-BRP service sections + tso section; "
        "see repro.api.ClusterConfig.from_dict); implies cluster mode and "
        "is mutually exclusive with --brps.  Service flags (--batch, "
        "--horizon, --scheduler, ...) supply the base config; the file's "
        "sections override where they speak",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="cluster mode: run the BRPs in N worker processes behind the "
        "bus seam (shared-memory macro snapshots, TSO in the parent); "
        "requires --driver simulated, incompatible with --outage "
        "(default 0 = single-process cluster)",
    )
    parser.add_argument(
        "--parallel", action="store_true",
        help="shorthand for --workers 2 (process-parallel cluster runtime)",
    )
    parser.add_argument(
        "--epoch-slices", type=float, default=4.0, metavar="S",
        help="parallel mode: simulated slices per barrier epoch (workers "
        "sync with the TSO tier at each boundary; default 4.0)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="also dump the full metrics registry",
    )
    parser.add_argument(
        "--metrics-format", default="text",
        help="exposition format for --metrics, by registry name: "
        "'text', 'json' or 'prometheus'",
    )
    parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write a JSON metrics snapshot (as_dict) to PATH after the run",
    )
    parser.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="record the structured event log (spans, offer lifecycle, bus, "
        "triggers) to FILE.jsonl; see repro.obs.EVENT_SCHEMA",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="stream the structured event log to stdout as JSON lines "
        "(the report moves to stderr)",
    )
    parser.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="offer-lifecycle sampling stride: trace offers whose id is "
        "divisible by N (default 1 = every offer; macro events are always "
        "traced)",
    )
    parser.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="journal every state-changing ingest fact to a durable "
        "segmented JSONL event log under DIR (cluster mode: one DIR/<brp> "
        "subdirectory per node); enables idempotent ingest and "
        "crash-recovery via 'repro.api.LedmsClient.resume_from_ledger'",
    )
    parser.add_argument(
        "--fsync", default="commit", metavar="MODE",
        help="ledger durability mode: 'commit' (fsync every append, "
        "default), 'close' (fsync on segment close) or 'never'",
    )
    parser.add_argument(
        "--duplicate-rate", type=float, default=0.0, metavar="P",
        help="fault injection: re-emit this fraction of arrivals later "
        "(at-least-once delivery; 0..1, default 0)",
    )
    parser.add_argument(
        "--reorder-window", type=float, default=0.0, metavar="SLICES",
        help="fault injection: shuffle offers within windows of this many "
        "slices (out-of-order delivery; default 0 = in order)",
    )
    parser.add_argument(
        "--outage", metavar="BRP:START:END", action="append", default=None,
        help="fault injection (cluster mode only): make BRP unreachable on "
        "the bus from slice START to END; repeatable, parked messages "
        "replay on recovery",
    )
    parser.add_argument(
        "--bus-retries", type=int, default=0, metavar="N",
        help="cluster mode: redeliver undeliverable bus messages up to N "
        "times with exponential backoff before parking them (default 0 = "
        "best-effort drop; overrides a --cluster file's bus section)",
    )
    if command == "serve":
        parser.add_argument(
            "--report-every", type=float, default=96.0,
            help="simulated slices between progress lines",
        )
    return parser


def _load_config_file(
    parser: argparse.ArgumentParser, command: str, argv: list[str]
) -> str | None:
    """Fold ``--config FILE.json`` values into the parser's defaults.

    File values become argparse *defaults*, so flags given explicitly on
    the command line always win.  Unknown keys are an error (exit 2), with
    the known flag set in the message.  Returns an error string instead of
    raising so the caller owns the exit path.
    """
    probe = argparse.ArgumentParser(add_help=False)
    probe.add_argument("--config", default=None)
    args, _ = probe.parse_known_args(argv)
    if args.config is None:
        return None
    import json

    known = {
        action.dest
        for action in parser._actions
        if action.dest not in ("help", "config")
    }
    try:
        with open(args.config) as handle:
            values = json.load(handle)
    except OSError as exc:
        return f"cannot read --config file: {exc}"
    except json.JSONDecodeError as exc:
        return f"--config file is not valid JSON: {exc}"
    if not isinstance(values, dict):
        return "--config file must hold a JSON object of flag values"
    values = {key.replace("-", "_"): value for key, value in values.items()}
    unknown = sorted(set(values) - known)
    if unknown:
        return (
            f"unknown {command} config keys {', '.join(map(repr, unknown))}; "
            f"known keys: {', '.join(sorted(known))}"
        )
    parser.set_defaults(**values)
    return None


def _parse_trigger_spec(spec: str):
    """``'kind'`` or ``'kind:key=val,...'`` to a :func:`build_trigger` mapping.

    Values parse as int, then float, then bool literal, else string; the
    kind itself is validated downstream against the trigger registry so the
    rejection message always carries the known name set.
    """
    from .core.errors import ServiceError

    kind, _, params = spec.partition(":")
    kind = kind.strip()
    if not kind:
        raise ServiceError(f"empty trigger kind in spec {spec!r}")
    mapping: dict = {"kind": kind}
    if params:
        for pair in params.split(","):
            key, eq, raw = pair.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ServiceError(
                    f"bad trigger spec {spec!r}: expected 'kind:key=val,...'"
                    f", got parameter {pair!r}"
                )
            raw = raw.strip()
            value: object
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = {"true": True, "false": False}.get(raw.lower(), raw)
            mapping[key] = value
    return mapping


def _run_runtime(command: str, argv: list[str]) -> int:
    from .api import (
        KIND_AGGREGATION,
        KIND_DRIVER,
        KIND_EXPORTER,
        KIND_FAULT,
        KIND_SCHEDULER,
        LedmsClient,
        default_registry,
    )
    from .api.ledger import FSYNC_MODES
    from .api.config import (
        AggregationConfig,
        IngestConfig,
        SchedulingConfig,
        ServiceConfig,
        build_trigger,
    )
    from .core.errors import ServiceError
    from .runtime import LoadGenerator

    parser = _runtime_parser(command)
    error = _load_config_file(parser, command, argv)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT
    args = parser.parse_args(argv)

    # Engine/scheduler/driver names are validated against the registry so
    # the rejection message always carries the currently-known name set.
    registry = default_registry()
    for kind, name in (
        (KIND_AGGREGATION, args.engine),
        (KIND_SCHEDULER, args.scheduler),
        (KIND_DRIVER, args.driver),
        (KIND_EXPORTER, args.metrics_format),
    ):
        if not registry.has(kind, name):
            known = ", ".join(registry.names(kind)) or "<none>"
            print(
                f"error: unknown {kind} {name!r}; known {kind} names: {known}",
                file=sys.stderr,
            )
            return EXIT_UNKNOWN_EXPERIMENT

    if args.cluster is not None and args.brps != 1:
        print(
            "error: --cluster and --brps are mutually exclusive",
            file=sys.stderr,
        )
        return EXIT_UNKNOWN_EXPERIMENT
    if args.brps <= 0:
        print(f"error: --brps must be positive, got {args.brps}", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT

    # Fault-injection and durability knobs are validated up front so a bad
    # spec never starts a (potentially long) run.
    if not 0.0 <= args.duplicate_rate <= 1.0:
        print(
            f"error: --duplicate-rate must be in [0, 1], got "
            f"{args.duplicate_rate}",
            file=sys.stderr,
        )
        return EXIT_UNKNOWN_EXPERIMENT
    if args.reorder_window < 0.0:
        print(
            f"error: --reorder-window must be >= 0, got {args.reorder_window}",
            file=sys.stderr,
        )
        return EXIT_UNKNOWN_EXPERIMENT
    if args.fsync not in FSYNC_MODES:
        print(
            f"error: unknown --fsync mode {args.fsync!r}; known modes: "
            f"{', '.join(FSYNC_MODES)}",
            file=sys.stderr,
        )
        return EXIT_UNKNOWN_EXPERIMENT
    if args.bus_retries < 0:
        print(
            f"error: --bus-retries must be >= 0, got {args.bus_retries}",
            file=sys.stderr,
        )
        return EXIT_UNKNOWN_EXPERIMENT
    if args.parallel and args.workers == 0:
        args.workers = 2
    if args.workers < 0:
        print(
            f"error: --workers must be >= 0, got {args.workers}",
            file=sys.stderr,
        )
        return EXIT_UNKNOWN_EXPERIMENT
    if args.workers > 0:
        if args.cluster is None and args.brps == 1:
            print(
                "error: --workers needs cluster mode (--brps K or --cluster)",
                file=sys.stderr,
            )
            return EXIT_UNKNOWN_EXPERIMENT
        if args.driver != "simulated":
            print(
                "error: --workers requires --driver simulated (worker "
                "processes own simulated clocks)",
                file=sys.stderr,
            )
            return EXIT_UNKNOWN_EXPERIMENT
        if args.outage:
            print(
                "error: --outage is not supported with --workers (the fault "
                "harness runs on the single-process cluster)",
                file=sys.stderr,
            )
            return EXIT_UNKNOWN_EXPERIMENT
        if args.epoch_slices <= 0:
            print(
                f"error: --epoch-slices must be positive, got "
                f"{args.epoch_slices}",
                file=sys.stderr,
            )
            return EXIT_UNKNOWN_EXPERIMENT
    outages = []
    if args.outage:
        if args.cluster is None and args.brps == 1:
            print(
                "error: --outage needs cluster mode (--brps K or --cluster)",
                file=sys.stderr,
            )
            return EXIT_UNKNOWN_EXPERIMENT
        for spec in args.outage:
            try:
                outages.append(registry.create(KIND_FAULT, "outage", spec))
            except ServiceError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_UNKNOWN_EXPERIMENT

    try:
        trigger_spec = (
            [_parse_trigger_spec(spec) for spec in args.trigger]
            if args.trigger
            else [
                {"kind": "count", "threshold": args.trigger_count},
                {"kind": "age", "max_age_slices": args.trigger_age},
                {
                    "kind": "imbalance",
                    "threshold_kwh": args.trigger_imbalance,
                },
            ]
        )
        config = ServiceConfig(
            aggregation=AggregationConfig(
                engine=args.engine, shards=args.shards
            ),
            scheduling=SchedulingConfig(
                horizon_slices=args.horizon,
                scheduler=args.scheduler,
                scheduler_passes=args.passes,
                trigger=build_trigger(trigger_spec),
                min_run_interval_slices=args.min_run_interval,
                seed=args.seed,
                target_p95_slices=args.target_p95_slices,
            ),
            ingest=IngestConfig(batch_size=args.batch),
        )
        driver_kwargs = (
            {"slices_per_second": args.slices_per_second}
            if args.driver == "wallclock"
            else {}
        )
        driver = registry.create(KIND_DRIVER, args.driver, **driver_kwargs)
        tracer, writers = _build_tracer(args)
        if args.cluster is not None or args.brps > 1:
            return _run_cluster(
                command, args, config, driver, tracer, writers, outages
            )
        ledger = _make_ledger(args)
        client = LedmsClient(config, driver=driver, tracer=tracer, ledger=ledger)
        generator = LoadGenerator(rate_per_hour=args.rate, seed=args.seed)
    except ServiceError as exc:
        print(f"error: invalid {command} configuration: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT
    # With --log-json the event stream owns stdout; everything human-facing
    # moves to stderr.
    out = sys.stderr if args.log_json else sys.stdout
    print(
        f"### {command}: rate={args.rate}/h duration={args.duration} slices "
        f"seed={args.seed} driver={args.driver}",
        file=out,
    )
    try:
        report = client.run_stream(
            _fault_stream(generator.stream(0.0, args.duration), args, args.seed),
            args.duration,
            report_every=getattr(args, "report_every", None),
            report_sink=lambda line: print(line, file=out),
        )
    except ServiceError as exc:
        print(f"error: invalid {command} configuration: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT
    if tracer is not None:
        client.service.trace_shutdown()
    for writer in writers:
        writer.close()
    print(report.as_text(), file=out)
    _emit_metrics(args, registry, client.service.metrics, out)
    return EXIT_OK


def _make_ledger(args, name: str | None = None):
    """An :class:`OfferLedger` over ``--ledger DIR`` (or ``None`` without it).

    Cluster mode passes the BRP ``name`` so each node journals into its own
    ``DIR/<name>`` subdirectory — one recoverable log per service.
    """
    if args.ledger is None:
        return None
    import os

    from .api.ledger import JsonlEventLog, OfferLedger

    directory = args.ledger if name is None else os.path.join(args.ledger, name)
    log = JsonlEventLog(directory, fsync=args.fsync)
    return OfferLedger(log, node=name or "brp")


def _fault_stream(arrivals, args, seed: int):
    """Apply the ``--reorder-window`` / ``--duplicate-rate`` transforms.

    Transforms resolve through the fault registry (reorder before
    duplicate, so re-emissions duplicate the *delivered* order); with both
    knobs at their defaults the stream passes through untouched.
    """
    from .api import KIND_FAULT, default_registry

    registry = default_registry()
    if args.reorder_window > 0.0:
        arrivals = registry.create(
            KIND_FAULT, "reorder", arrivals, args.reorder_window, seed=seed
        )
    if args.duplicate_rate > 0.0:
        arrivals = registry.create(
            KIND_FAULT, "duplicate", arrivals, args.duplicate_rate, seed=seed + 1
        )
    return arrivals


def _build_tracer(args):
    """The shared tracer (and its JSONL writers) from the trace flags.

    Returns ``(None, [])`` when tracing is off, so services fall back to
    their :class:`~repro.obs.tracing.NullTracer` default.
    """
    if args.trace is None and not args.log_json:
        return None, []
    from .obs import JsonlWriter, Tracer

    writers = []
    if args.trace is not None:
        writers.append(JsonlWriter(args.trace))
    if args.log_json:
        writers.append(JsonlWriter(stream=sys.stdout))
    if len(writers) == 1:
        sink = writers[0]
    else:
        def sink(record, _writers=tuple(writers)):
            for writer in _writers:
                writer(record)

    tracer = Tracer(sample_every=args.trace_sample, sink=sink)
    return tracer, writers


def _emit_metrics(args, registry, metrics, out) -> None:
    """Apply the --metrics / --metrics-json flags to one registry."""
    from .api import KIND_EXPORTER
    from .obs import render_metrics_json

    if args.metrics:
        render = registry.create(KIND_EXPORTER, args.metrics_format)
        print(file=out)
        print(render(metrics), file=out, end="")
    if args.metrics_json is not None:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            handle.write(render_metrics_json(metrics))
            handle.write("\n")


def _run_cluster(
    command: str, args, config, driver, tracer, writers, outages=()
) -> int:
    """Multi-node mode of serve/loadtest: K BRPs + TSO over the bus.

    ``--cluster FILE.json`` supplies per-BRP service sections and the TSO
    section, layered over the flag-derived base config; ``--brps K``
    replicates the flag-derived config as-is.  Every BRP replays its own
    Poisson stream (seeded ``--seed + index``, so per-BRP traffic differs
    but the whole cluster run is deterministic) on the one shared driver.
    With ``--ledger DIR`` each BRP journals into ``DIR/<name>``; ``--outage``
    specs schedule bus-reachability toggles on the shared driver.
    """
    import json

    from .api import ClusterConfig, ClusterRuntime
    from .core.errors import ServiceError
    from .runtime import LoadGenerator, apply_outages

    if args.cluster is not None:
        try:
            with open(args.cluster) as handle:
                spec = json.load(handle)
        except OSError as exc:
            print(f"error: cannot read --cluster file: {exc}", file=sys.stderr)
            return EXIT_UNKNOWN_EXPERIMENT
        except json.JSONDecodeError as exc:
            print(
                f"error: --cluster file is not valid JSON: {exc}",
                file=sys.stderr,
            )
            return EXIT_UNKNOWN_EXPERIMENT
        if not isinstance(spec, dict):
            print(
                "error: --cluster file must hold a JSON object",
                file=sys.stderr,
            )
            return EXIT_UNKNOWN_EXPERIMENT
        # Flag-derived service settings underlie every BRP; the file's
        # defaults/per-BRP sections override where they speak.
        cluster_config = ClusterConfig.from_dict(spec, base=config)
    else:
        cluster_config = ClusterConfig.uniform(args.brps, config)
    if (
        args.target_p95_slices is not None
        and cluster_config.tso.target_p95_slices is None
    ):
        # The latency target reaches both tiers: a --cluster file's tso
        # section wins where it speaks, the flag fills the gap.
        import dataclasses

        cluster_config = dataclasses.replace(
            cluster_config,
            tso=dataclasses.replace(
                cluster_config.tso, target_p95_slices=args.target_p95_slices
            ),
        )
    if args.bus_retries > 0:
        import dataclasses

        from .runtime import BusConfig

        cluster_config = dataclasses.replace(
            cluster_config, bus=BusConfig(max_retries=args.bus_retries)
        )
    if args.workers > 0:
        return _run_parallel_cluster(command, args, cluster_config, tracer, writers)
    ledger_factory = (
        (lambda name: _make_ledger(args, name)) if args.ledger else None
    )
    cluster = ClusterRuntime(
        cluster_config,
        driver=driver,
        tracer=tracer,
        ledger_factory=ledger_factory,
    )
    try:
        apply_outages(cluster, outages)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT
    streams = {
        name: _fault_stream(
            LoadGenerator(
                rate_per_hour=args.rate, seed=args.seed + index
            ).stream(0.0, args.duration),
            args,
            args.seed + index,
        )
        for index, name in enumerate(cluster.clients)
    }
    out = sys.stderr if args.log_json else sys.stdout
    print(
        f"### {command}: cluster of {len(cluster.clients)} BRPs + TSO, "
        f"rate={args.rate}/h per BRP, duration={args.duration} slices "
        f"seed={args.seed} driver={args.driver}",
        file=out,
    )
    report = cluster.run(
        streams,
        args.duration,
        report_every=getattr(args, "report_every", None),
        report_sink=lambda line: print(line, file=out),
    )
    if tracer is not None:
        cluster.trace_shutdown()
    for writer in writers:
        writer.close()
    print(report.as_text(), file=out)
    from .api import default_registry

    _emit_metrics(args, default_registry(), cluster.metrics(), out)
    return EXIT_OK


def _run_parallel_cluster(command: str, args, cluster_config, tracer, writers) -> int:
    """``--workers N``: the cluster's BRPs in worker processes.

    Same cluster semantics as :func:`_run_cluster`'s single-process path
    (per-BRP seeded streams, TSO tier, tracing, metrics), but each BRP
    stack runs in one of N forked workers behind the process bus, with
    macro snapshots crossing over shared memory.  With ``--ledger DIR``
    each worker journals its BRPs under ``DIR/worker-<index>/<name>`` so
    the per-process logs never interleave.
    """
    import os

    from .core.errors import ServiceError
    from .runtime import LoadGenerator
    from .runtime.parallel import ParallelClusterRuntime, WorkerCrashError

    ledger_factory = (
        (
            lambda index, name: _make_ledger(
                args, os.path.join(f"worker-{index}", name)
            )
        )
        if args.ledger
        else None
    )
    out = sys.stderr if args.log_json else sys.stdout
    try:
        cluster = ParallelClusterRuntime(
            cluster_config,
            workers=args.workers,
            epoch_slices=args.epoch_slices,
            tracer=tracer,
            ledger_factory=ledger_factory,
        )
    except ServiceError as exc:
        print(f"error: invalid {command} configuration: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT
    streams = {
        name: _fault_stream(
            LoadGenerator(
                rate_per_hour=args.rate, seed=args.seed + index
            ).stream(0.0, args.duration),
            args,
            args.seed + index,
        )
        for index, name in enumerate(cluster.config.brps)
    }
    print(
        f"### {command}: cluster of {len(cluster.config.brps)} BRPs + TSO "
        f"across {args.workers} worker processes, rate={args.rate}/h per "
        f"BRP, duration={args.duration} slices seed={args.seed}",
        file=out,
    )
    try:
        report = cluster.run(streams, args.duration)
    except WorkerCrashError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_EXPERIMENT_FAILED
    for writer in writers:
        writer.close()
    print(report.as_text(), file=out)
    from .api import default_registry

    _emit_metrics(args, default_registry(), cluster.metrics(), out)
    return EXIT_OK


# ----------------------------------------------------------------------
def _run_inspect(argv: list[str]) -> int:
    """``inspect TRACE.jsonl [--offer ID]``: summarize a recorded trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro inspect",
        description=(
            "Summarize a structured event log recorded with --trace: by "
            "default a per-stage/per-node breakdown (span timings, bus "
            "traffic); with --offer, the causal chain of one offer id "
            "across BRP and TSO nodes."
        ),
    )
    parser.add_argument(
        "trace", metavar="TRACE.jsonl",
        help="event log written by 'serve'/'loadtest' --trace",
    )
    parser.add_argument(
        "--offer", type=int, default=None, metavar="ID",
        help="render the end-to-end causal chain of this offer id",
    )
    args = parser.parse_args(argv)

    from .obs import load_trace, render_breakdown, render_offer_tree

    try:
        events = load_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT
    except ValueError as exc:
        print(f"error: malformed trace file: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT
    if args.offer is not None:
        print(render_offer_tree(events, args.offer))
    else:
        print(render_breakdown(events))
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiment(s) or runtime subcommand; returns exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "inspect":
        return _run_inspect(argv[1:])
    if argv and argv[0] in RUNTIME_COMMANDS:
        return _run_runtime(argv[0], argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate experiments from the MIRABEL paper (see "
        "EXPERIMENTS.md for the paper-vs-measured discussion), or drive the "
        "streaming runtime via the 'serve' / 'loadtest' subcommands.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id, 'all', or 'list' (see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the experiment registry"
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment == "list":
        _print_registry()
        return EXIT_OK
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print("error: no experiment given (try --list)", file=sys.stderr)
        return EXIT_UNKNOWN_EXPERIMENT

    if args.experiment == "all":
        selected = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        selected = [args.experiment]
    else:
        print(
            f"error: unknown experiment {args.experiment!r} "
            "(run 'python -m repro --list' for the registry)",
            file=sys.stderr,
        )
        return EXIT_UNKNOWN_EXPERIMENT

    for name in selected:
        runner, description = EXPERIMENTS[name]
        print(f"\n### {name}: {description}")
        try:
            runner()
        except Exception:
            traceback.print_exc()
            print(f"error: experiment {name!r} failed", file=sys.stderr)
            return EXIT_EXPERIMENT_FAILED
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
