"""Exception hierarchy for the MIRABEL reproduction.

Every package raises subclasses of :class:`MirabelError` so callers can
catch library failures without also swallowing programming errors.
"""

from __future__ import annotations


class MirabelError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidFlexOfferError(MirabelError):
    """A flex-offer violates its structural invariants.

    Raised, e.g., when ``latest_start < earliest_start`` or a profile slice
    has ``max_energy < min_energy``.
    """


class InvalidScheduleError(MirabelError):
    """A scheduled flex-offer violates the constraints of its flex-offer."""


class DisaggregationError(MirabelError):
    """Disaggregation of a scheduled aggregate could not be performed.

    By construction of the n-to-1 aggregator this should never happen for
    schedules that respect the aggregate's constraints; it therefore also
    guards against internal inconsistencies.
    """


class AggregationError(MirabelError):
    """The aggregation pipeline was used inconsistently.

    Raised, e.g., when deleting a flex-offer that was never added or when
    aggregating an empty group.
    """


class TimeSeriesError(MirabelError):
    """Time-series operands are misaligned or otherwise incompatible."""


class ForecastingError(MirabelError):
    """A forecast model was used before fitting, or fitting failed."""


class SchedulingError(MirabelError):
    """The scheduling problem definition is inconsistent."""


class NegotiationError(MirabelError):
    """Invalid pricing policy configuration or inputs."""


class DataManagementError(MirabelError):
    """Schema violations in the dimensional store (unknown columns, bad keys)."""


class CommunicationError(MirabelError):
    """Message routing failures in the simulated node network."""


class ServiceError(MirabelError):
    """The streaming runtime was misused (bad event times, invalid config)."""
