"""Discrete time axis shared by all MIRABEL components.

The MIRABEL system plans energy in discrete metering slices.  Throughout the
library a point in time is an ``int`` — the index of a slice on a
:class:`TimeAxis`.  The axis knows the slice resolution and an epoch, so slice
indices can be converted to and from :class:`datetime.datetime` when talking
to users; all internal algorithms (aggregation, scheduling, forecasting) work
purely on integers, which keeps them fast and unambiguous.

The default resolution is 15 minutes, the ENTSO-E metering-interval targeted
by MIRABEL; the forecasting experiments use a 30-minute axis to mirror the
half-hourly UK demand data of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

__all__ = [
    "TimeAxis",
    "DEFAULT_AXIS",
    "MINUTES_PER_DAY",
]

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class TimeAxis:
    """A uniform discrete time axis.

    Parameters
    ----------
    resolution_minutes:
        Length of one slice in minutes.  Must divide a day evenly so that
        daily and weekly seasonality have integer periods.
    epoch:
        The wall-clock time of slice ``0``.
    """

    resolution_minutes: int = 15
    epoch: datetime = datetime(2010, 1, 4)  # a Monday, so weeks start cleanly

    def __post_init__(self) -> None:
        if self.resolution_minutes <= 0:
            raise ValueError("resolution_minutes must be positive")
        if MINUTES_PER_DAY % self.resolution_minutes != 0:
            raise ValueError(
                "resolution_minutes must divide a day evenly, got "
                f"{self.resolution_minutes}"
            )

    @property
    def slices_per_hour(self) -> int:
        """Number of slices in one hour (may be fractional-free only for <=60m)."""
        if 60 % self.resolution_minutes == 0:
            return 60 // self.resolution_minutes
        raise ValueError(
            f"resolution {self.resolution_minutes} min does not divide an hour"
        )

    @property
    def slices_per_day(self) -> int:
        """Number of slices in one day."""
        return MINUTES_PER_DAY // self.resolution_minutes

    @property
    def slices_per_week(self) -> int:
        """Number of slices in one week."""
        return 7 * self.slices_per_day

    def to_datetime(self, slice_index: int) -> datetime:
        """Wall-clock time at which slice ``slice_index`` begins."""
        return self.epoch + timedelta(minutes=slice_index * self.resolution_minutes)

    def to_slice(self, moment: datetime) -> int:
        """Slice index containing ``moment`` (floor division)."""
        delta = moment - self.epoch
        total_minutes = delta.days * MINUTES_PER_DAY + delta.seconds // 60
        return total_minutes // self.resolution_minutes

    def hour_of_day(self, slice_index: int) -> int:
        """Hour of day (0-23) in which the slice begins."""
        minutes = (slice_index * self.resolution_minutes) % MINUTES_PER_DAY
        return minutes // 60

    def slice_of_day(self, slice_index: int) -> int:
        """Position of the slice within its day (0 .. slices_per_day - 1)."""
        return slice_index % self.slices_per_day

    def day_of_week(self, slice_index: int) -> int:
        """Day of week, Monday = 0 (relative to the epoch's weekday)."""
        day = slice_index // self.slices_per_day
        return (self.epoch.weekday() + day) % 7

    def day_index(self, slice_index: int) -> int:
        """Number of whole days since the epoch."""
        return slice_index // self.slices_per_day

    def duration_minutes(self, n_slices: int) -> int:
        """Total minutes spanned by ``n_slices`` slices."""
        return n_slices * self.resolution_minutes

    def slices_for_hours(self, hours: float) -> int:
        """Number of slices covering ``hours`` hours (must be a whole number)."""
        minutes = hours * 60
        n, rem = divmod(minutes, self.resolution_minutes)
        if rem:
            raise ValueError(
                f"{hours} h is not a whole number of {self.resolution_minutes}-min slices"
            )
        return int(n)


#: Library-wide default axis: 15-minute slices.
DEFAULT_AXIS = TimeAxis()
