"""Flex-offers — MIRABEL's central energy-planning object.

A flex-offer (paper §2, Fig. 3) describes an amount of energy that a prosumer
is willing to consume (or produce), together with the *flexibility* the
balance-responsible party (BRP) may exploit:

* **time flexibility** — the consumption profile may start anywhere between an
  *earliest start time* and a *latest start time*;
* **energy flexibility** — each profile slice carries a ``[min_energy,
  max_energy]`` range rather than a fixed amount.

Energy is measured in kWh per slice.  Positive energies denote consumption,
negative energies denote production, so supply flex-offers (e.g. from a
controllable CHP unit) are "treated equivalently" exactly as the paper
requires — every algorithm in the library is sign-agnostic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

import numpy as np

from .errors import InvalidFlexOfferError

__all__ = [
    "EnergyConstraint",
    "Profile",
    "FlexOffer",
    "flex_offer",
    "rebase_offer_ids",
]

_id_counter = itertools.count(1)


def _next_id() -> int:
    return next(_id_counter)


def rebase_offer_ids(base: int) -> None:
    """Restart the process-wide offer-id counter at ``base`` + 1.

    Offer ids are minted from one process-global counter, which keeps them
    unique only *within* a process.  A forked worker inherits the parent's
    counter position, so two workers would mint colliding aggregate ids —
    fatal once their macro flex-offers meet again at the TSO.  Each worker
    therefore rebases its counter into a disjoint band before running
    (e.g. ``(worker_index + 1) * 10**12``).
    """
    global _id_counter
    if base < 0:
        raise InvalidFlexOfferError(f"offer-id base must be >= 0, got {base}")
    _id_counter = itertools.count(base + 1)


@dataclass(frozen=True, slots=True)
class EnergyConstraint:
    """Energy bounds for one profile slice, in kWh.

    ``min_energy <= max_energy``; the *energy flexibility* of the slice is
    ``max_energy - min_energy``.
    """

    min_energy: float
    max_energy: float

    def __post_init__(self) -> None:
        if self.max_energy < self.min_energy:
            raise InvalidFlexOfferError(
                f"max_energy {self.max_energy} < min_energy {self.min_energy}"
            )

    @property
    def energy_flexibility(self) -> float:
        """Width of the admissible energy range (kWh)."""
        return self.max_energy - self.min_energy

    def contains(self, energy: float, tol: float = 1e-9) -> bool:
        """Whether ``energy`` lies within the bounds (with tolerance)."""
        return self.min_energy - tol <= energy <= self.max_energy + tol

    def clamp(self, energy: float) -> float:
        """Project ``energy`` onto the admissible range."""
        return min(max(energy, self.min_energy), self.max_energy)

    def scaled(self, factor: float) -> "EnergyConstraint":
        """Constraint with both bounds multiplied by a non-negative factor."""
        if factor < 0:
            raise InvalidFlexOfferError("scaling factor must be non-negative")
        return EnergyConstraint(self.min_energy * factor, self.max_energy * factor)

    def __add__(self, other: "EnergyConstraint") -> "EnergyConstraint":
        return EnergyConstraint(
            self.min_energy + other.min_energy, self.max_energy + other.max_energy
        )


class Profile(tuple):
    """An immutable sequence of :class:`EnergyConstraint`, one per slice.

    Each entry spans exactly one slice of the time axis; devices whose
    operation covers several slices simply repeat constraints (a 2 h washing
    cycle on a 15-min axis is a profile of 8 slices).

    Bound views (:meth:`min_energies` / :meth:`max_energies` and the NumPy
    :attr:`min_array` / :attr:`max_array`) are cached on first access: they
    are hit on every aggregate build and every cost-engine pack, and the
    profile is immutable, so re-materialising them per call was pure waste.
    (No ``__slots__``: tuple subclasses cannot carry non-empty slots, and the
    cache lives in the instance dict.)
    """

    def __new__(cls, slices: Iterable[EnergyConstraint]) -> "Profile":
        items = tuple(slices)
        if not items:
            raise InvalidFlexOfferError("a profile must contain at least one slice")
        for s in items:
            if not isinstance(s, EnergyConstraint):
                raise InvalidFlexOfferError(
                    f"profile slices must be EnergyConstraint, got {type(s).__name__}"
                )
        return super().__new__(cls, items)

    @classmethod
    def from_bounds(
        cls, bounds: Iterable[tuple[float, float]]
    ) -> "Profile":
        """Build a profile from ``(min_energy, max_energy)`` pairs.

        Skips the per-item type validation of the constructor — every item
        is an :class:`EnergyConstraint` built right here (aggregate builds
        materialise millions of them, so the check is pure overhead).
        """
        items = tuple(EnergyConstraint(lo, hi) for lo, hi in bounds)
        if not items:
            raise InvalidFlexOfferError("a profile must contain at least one slice")
        return tuple.__new__(cls, items)

    @classmethod
    def constant(cls, n_slices: int, min_energy: float, max_energy: float) -> "Profile":
        """A flat profile of ``n_slices`` identical constraints."""
        if n_slices <= 0:
            raise InvalidFlexOfferError("n_slices must be positive")
        return cls(EnergyConstraint(min_energy, max_energy) for _ in range(n_slices))

    @property
    def duration(self) -> int:
        """Number of slices the profile spans."""
        return len(self)

    @property
    def total_min_energy(self) -> float:
        """Sum of lower bounds (kWh)."""
        return sum(s.min_energy for s in self)

    @property
    def total_max_energy(self) -> float:
        """Sum of upper bounds (kWh)."""
        return sum(s.max_energy for s in self)

    @property
    def total_energy_flexibility(self) -> float:
        """Sum of per-slice energy flexibilities (kWh)."""
        return sum(s.energy_flexibility for s in self)

    def min_energies(self) -> tuple[float, ...]:
        """Lower bounds as a tuple (cached)."""
        cached = self.__dict__.get("_min_energies")
        if cached is None:
            cached = tuple(s.min_energy for s in self)
            self.__dict__["_min_energies"] = cached
        return cached

    def max_energies(self) -> tuple[float, ...]:
        """Upper bounds as a tuple (cached)."""
        cached = self.__dict__.get("_max_energies")
        if cached is None:
            cached = tuple(s.max_energy for s in self)
            self.__dict__["_max_energies"] = cached
        return cached

    @property
    def min_array(self) -> np.ndarray:
        """Read-only float64 array of the lower bounds (cached)."""
        cached = self.__dict__.get("_min_array")
        if cached is None:
            cached = np.fromiter(
                (s.min_energy for s in self), dtype=float, count=len(self)
            )
            cached.setflags(write=False)
            self.__dict__["_min_array"] = cached
        return cached

    @property
    def max_array(self) -> np.ndarray:
        """Read-only float64 array of the upper bounds (cached)."""
        cached = self.__dict__.get("_max_array")
        if cached is None:
            cached = np.fromiter(
                (s.max_energy for s in self), dtype=float, count=len(self)
            )
            cached.setflags(write=False)
            self.__dict__["_max_array"] = cached
        return cached


@dataclass(frozen=True, slots=True)
class FlexOffer:
    """A (micro or macro) flex-offer.

    Parameters
    ----------
    profile:
        Energy constraints per slice, starting at the chosen start time.
    earliest_start, latest_start:
        Bounds (slice indices, inclusive) between which the profile may be
        started.  ``latest_start - earliest_start`` is the *time flexibility*.
    offer_id:
        Unique identifier; auto-assigned when ``None`` is passed to
        :func:`flex_offer`.
    owner:
        Identifier of the issuing prosumer / node.
    creation_time:
        Slice at which the offer was issued.
    assignment_before:
        Deadline (slice) by which the BRP must schedule the offer; offers with
        an approaching deadline are *expiring* and must be flushed through the
        aggregation pipeline (paper §4).  ``None`` means no explicit deadline.
    unit_price:
        Compensation in EUR/kWh paid for scheduled energy; enters the
        schedule cost (paper §6) and negotiation (§7).
    """

    profile: Profile
    earliest_start: int
    latest_start: int
    offer_id: int = field(default_factory=_next_id)
    owner: str = "anonymous"
    creation_time: int = 0
    assignment_before: int | None = None
    unit_price: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.profile, Profile):
            object.__setattr__(self, "profile", Profile(self.profile))
        if self.latest_start < self.earliest_start:
            raise InvalidFlexOfferError(
                f"latest_start {self.latest_start} precedes earliest_start "
                f"{self.earliest_start}"
            )
        if self.earliest_start < self.creation_time:
            raise InvalidFlexOfferError(
                "earliest_start must not precede creation_time"
            )
        if (
            self.assignment_before is not None
            and self.assignment_before > self.latest_start
        ):
            raise InvalidFlexOfferError(
                "assignment_before must not exceed latest_start"
            )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def time_flexibility(self) -> int:
        """Number of slices the start may be shifted (paper Fig. 3)."""
        return self.latest_start - self.earliest_start

    @property
    def duration(self) -> int:
        """Profile length in slices."""
        return self.profile.duration

    @property
    def earliest_end(self) -> int:
        """First slice after the profile when started as early as possible."""
        return self.earliest_start + self.duration

    @property
    def latest_end(self) -> int:
        """First slice after the profile when started as late as possible."""
        return self.latest_start + self.duration

    @property
    def total_min_energy(self) -> float:
        """Minimum total energy over the whole profile (kWh)."""
        return self.profile.total_min_energy

    @property
    def total_max_energy(self) -> float:
        """Maximum total energy over the whole profile (kWh)."""
        return self.profile.total_max_energy

    @property
    def total_energy_flexibility(self) -> float:
        """Total dispatchable energy range (kWh), the §7 *energy flexibility*."""
        return self.profile.total_energy_flexibility

    @property
    def is_consumption(self) -> bool:
        """True when the offer is net-consuming (positive mean energy)."""
        return (self.total_min_energy + self.total_max_energy) >= 0

    @property
    def min_array(self) -> np.ndarray:
        """Per-slice minimum energies as a cached read-only array."""
        return self.profile.min_array

    @property
    def max_array(self) -> np.ndarray:
        """Per-slice maximum energies as a cached read-only array."""
        return self.profile.max_array

    def start_times(self) -> Iterator[int]:
        """Iterate over all admissible start slices."""
        return iter(range(self.earliest_start, self.latest_start + 1))

    def assignment_flexibility(self, now: int) -> int:
        """Slices left for (re)scheduling before the assignment deadline.

        The §7 *assignment flexibility*: time remaining until the offer must
        be assigned.  Falls back to ``latest_start`` when no explicit
        deadline was given; never negative.
        """
        deadline = (
            self.assignment_before
            if self.assignment_before is not None
            else self.latest_start
        )
        return max(0, deadline - now)

    def with_times(self, earliest_start: int, latest_start: int) -> "FlexOffer":
        """Copy with a different admissible start window (same identity)."""
        return replace(
            self, earliest_start=earliest_start, latest_start=latest_start
        )


def flex_offer(
    bounds: Sequence[tuple[float, float]],
    earliest_start: int,
    latest_start: int,
    *,
    offer_id: int | None = None,
    owner: str = "anonymous",
    creation_time: int = 0,
    assignment_before: int | None = None,
    unit_price: float = 0.0,
) -> FlexOffer:
    """Convenience constructor from raw ``(min, max)`` energy pairs.

    Example
    -------
    An EV that needs 8-10 kWh over two slices, starting between slice 88 and
    slice 116::

        offer = flex_offer([(4, 5), (4, 5)], earliest_start=88, latest_start=116)
    """
    return FlexOffer(
        profile=Profile.from_bounds(bounds),
        earliest_start=earliest_start,
        latest_start=latest_start,
        offer_id=_next_id() if offer_id is None else offer_id,
        owner=owner,
        creation_time=creation_time,
        assignment_before=assignment_before,
        unit_price=unit_price,
    )
