"""Slice-indexed time series — the substrate under forecasting and scheduling.

A :class:`TimeSeries` couples a numpy array of values with the slice index of
its first element.  All MIRABEL components exchange energy measurements and
forecasts as time series; keeping the start slice explicit makes alignment
errors impossible to ignore (operations on misaligned series raise
:class:`~repro.core.errors.TimeSeriesError` instead of silently shifting
data).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from .errors import TimeSeriesError

__all__ = ["TimeSeries", "zeros", "align_union"]


class TimeSeries:
    """A uniformly sampled series starting at slice ``start``.

    Values are stored as a float64 numpy array; instances are treated as
    immutable by convention (no public mutators) so they can be shared
    between components.
    """

    __slots__ = ("_start", "_values")

    def __init__(self, start: int, values: Iterable[float]):
        self._start = int(start)
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise TimeSeriesError(f"values must be 1-D, got shape {arr.shape}")
        self._values = arr

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def start(self) -> int:
        """Slice index of the first value."""
        return self._start

    @property
    def end(self) -> int:
        """Slice index one past the last value (exclusive)."""
        return self._start + len(self._values)

    @property
    def values(self) -> np.ndarray:
        """The underlying array (do not mutate)."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return self._start == other._start and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing is enough
        return id(self)

    def __repr__(self) -> str:
        head = ", ".join(f"{v:.3g}" for v in self._values[:4])
        tail = ", ..." if len(self._values) > 4 else ""
        return f"TimeSeries(start={self._start}, n={len(self)}, [{head}{tail}])"

    def at(self, slice_index: int) -> float:
        """Value at an absolute slice index."""
        if not self._start <= slice_index < self.end:
            raise TimeSeriesError(
                f"slice {slice_index} outside [{self._start}, {self.end})"
            )
        return float(self._values[slice_index - self._start])

    def covers(self, start: int, end: int) -> bool:
        """Whether the series fully covers the half-open window ``[start, end)``."""
        return self._start <= start and end <= self.end

    def window(self, start: int, end: int) -> "TimeSeries":
        """Sub-series over the half-open absolute window ``[start, end)``."""
        if not self.covers(start, end):
            raise TimeSeriesError(
                f"window [{start}, {end}) not covered by [{self._start}, {self.end})"
            )
        lo = start - self._start
        return TimeSeries(start, self._values[lo : lo + (end - start)])

    def first(self, n: int) -> "TimeSeries":
        """The first ``n`` values."""
        return TimeSeries(self._start, self._values[:n])

    def last(self, n: int) -> "TimeSeries":
        """The last ``n`` values."""
        return TimeSeries(self.end - n, self._values[len(self) - n :])

    def split(self, slice_index: int) -> tuple["TimeSeries", "TimeSeries"]:
        """Split into ``[start, slice_index)`` and ``[slice_index, end)``."""
        return self.window(self._start, slice_index), self.window(
            slice_index, self.end
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def shifted(self, offset: int) -> "TimeSeries":
        """Same values, start moved by ``offset`` slices."""
        return TimeSeries(self._start + offset, self._values)

    def extended(self, other: "TimeSeries") -> "TimeSeries":
        """Concatenate a series that begins exactly where this one ends."""
        if other.start != self.end:
            raise TimeSeriesError(
                f"cannot extend: other starts at {other.start}, expected {self.end}"
            )
        return TimeSeries(self._start, np.concatenate([self._values, other.values]))

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "TimeSeries":
        """Apply an elementwise function to the values."""
        return TimeSeries(self._start, fn(self._values))

    def resampled(self, factor: int) -> "TimeSeries":
        """Aggregate ``factor`` consecutive slices into one by summation.

        Used to move energy series between axes (e.g. 15-min → hourly).
        The length must be divisible by ``factor``; the new start index is
        expressed on the coarser axis (``start // factor``), so ``start`` must
        be aligned to a ``factor`` boundary.
        """
        if factor <= 0:
            raise TimeSeriesError("factor must be positive")
        if len(self) % factor != 0:
            raise TimeSeriesError(
                f"length {len(self)} not divisible by factor {factor}"
            )
        if self._start % factor != 0:
            raise TimeSeriesError(
                f"start {self._start} not aligned to factor {factor}"
            )
        coarse = self._values.reshape(-1, factor).sum(axis=1)
        return TimeSeries(self._start // factor, coarse)

    # ------------------------------------------------------------------
    # arithmetic (strictly aligned)
    # ------------------------------------------------------------------
    def _binary(self, other, op) -> "TimeSeries":
        if isinstance(other, TimeSeries):
            if other.start != self._start or len(other) != len(self):
                raise TimeSeriesError(
                    "misaligned operands: "
                    f"[{self._start}, {self.end}) vs [{other.start}, {other.end}); "
                    "use window()/align_union() first"
                )
            return TimeSeries(self._start, op(self._values, other.values))
        return TimeSeries(self._start, op(self._values, float(other)))

    def __add__(self, other) -> "TimeSeries":
        return self._binary(other, np.add)

    def __radd__(self, other) -> "TimeSeries":
        return self.__add__(other)

    def __sub__(self, other) -> "TimeSeries":
        return self._binary(other, np.subtract)

    def __mul__(self, other) -> "TimeSeries":
        return self._binary(other, np.multiply)

    def __rmul__(self, other) -> "TimeSeries":
        return self.__mul__(other)

    def __neg__(self) -> "TimeSeries":
        return TimeSeries(self._start, -self._values)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def total(self) -> float:
        """Sum of all values."""
        return float(self._values.sum())

    def mean(self) -> float:
        """Arithmetic mean of the values."""
        return float(self._values.mean())

    def peak(self) -> float:
        """Maximum value."""
        return float(self._values.max())

    def absolute(self) -> "TimeSeries":
        """Elementwise absolute value."""
        return TimeSeries(self._start, np.abs(self._values))


def zeros(start: int, n: int) -> TimeSeries:
    """An all-zero series of length ``n`` starting at ``start``."""
    return TimeSeries(start, np.zeros(n))


def align_union(series: Sequence[TimeSeries]) -> list[TimeSeries]:
    """Zero-pad each series to the union of all windows.

    The result is a list of series that all share the same ``start`` and
    length and can therefore be combined arithmetically.  An empty input
    returns an empty list.
    """
    if not series:
        return []
    lo = min(s.start for s in series)
    hi = max(s.end for s in series)
    out = []
    for s in series:
        padded = np.zeros(hi - lo)
        padded[s.start - lo : s.end - lo] = s.values
        out.append(TimeSeries(lo, padded))
    return out
