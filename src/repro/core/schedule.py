"""Scheduled flex-offers and schedules.

Scheduling (paper §6) *fixes* the two flexibilities of a flex-offer: the start
time is pinned to a single slice and every profile slice gets a concrete
energy amount inside its ``[min, max]`` range.  A :class:`ScheduledFlexOffer`
records that assignment; a :class:`Schedule` is a collection of them plus the
market transactions, and can render itself as an energy time series for
imbalance accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .errors import InvalidScheduleError
from .flexoffer import FlexOffer
from .timeseries import TimeSeries, align_union

__all__ = ["ScheduledFlexOffer", "Schedule"]


@dataclass(frozen=True, slots=True)
class ScheduledFlexOffer:
    """A flex-offer with start time and per-slice energies fixed.

    Invariants are validated eagerly: the start must lie within
    ``[earliest_start, latest_start]`` and every energy within its slice's
    constraint.  Violations raise :class:`InvalidScheduleError`, which is how
    the *disaggregation requirement* tests detect incorrect aggregates.
    """

    offer: FlexOffer
    start: int
    energies: tuple[float, ...]

    def __post_init__(self) -> None:
        values = np.asarray(self.energies, dtype=float)
        object.__setattr__(self, "energies", tuple(values.tolist()))
        if not self.offer.earliest_start <= self.start <= self.offer.latest_start:
            raise InvalidScheduleError(
                f"start {self.start} outside "
                f"[{self.offer.earliest_start}, {self.offer.latest_start}] "
                f"for offer {self.offer.offer_id}"
            )
        if len(values) != self.offer.duration:
            raise InvalidScheduleError(
                f"got {len(values)} energies for a "
                f"{self.offer.duration}-slice profile"
            )
        # Containment check: vectorized over the profile's cached bound
        # arrays when they are already materialised (scheduler outputs —
        # the engine packed this profile, so the arrays are warm); plain
        # per-slice arithmetic otherwise, which beats a cold cache fill for
        # the short profiles disaggregation produces.
        profile = self.offer.profile
        if "_min_array" in profile.__dict__:
            bad = (values < profile.min_array - 1e-9) | (
                values > profile.max_array + 1e-9
            )
            violation = int(np.argmax(bad)) if bad.any() else None
        else:
            violation = next(
                (
                    i
                    for i, (energy, constraint) in enumerate(zip(self.energies, profile))
                    if not constraint.contains(energy)
                ),
                None,
            )
        if violation is not None:
            constraint = profile[violation]
            raise InvalidScheduleError(
                f"energy {self.energies[violation]} outside "
                f"[{constraint.min_energy}, {constraint.max_energy}] "
                f"in slice {violation} of offer {self.offer.offer_id}"
            )

    @property
    def end(self) -> int:
        """First slice after the scheduled profile."""
        return self.start + self.offer.duration

    @property
    def total_energy(self) -> float:
        """Total scheduled energy (kWh, signed)."""
        return float(sum(self.energies))

    @property
    def start_offset(self) -> int:
        """Shift relative to the earliest admissible start."""
        return self.start - self.offer.earliest_start

    def as_series(self) -> TimeSeries:
        """Scheduled energies as a time series starting at :attr:`start`."""
        return TimeSeries(self.start, self.energies)

    @classmethod
    def at_minimum(cls, offer: FlexOffer, start: int | None = None) -> "ScheduledFlexOffer":
        """Schedule at the lower energy bounds (earliest start by default)."""
        s = offer.earliest_start if start is None else start
        return cls(offer, s, offer.profile.min_energies())

    @classmethod
    def at_fraction(
        cls, offer: FlexOffer, fraction: float, start: int | None = None
    ) -> "ScheduledFlexOffer":
        """Schedule each slice at ``min + fraction * (max - min)``."""
        if not 0.0 <= fraction <= 1.0:
            raise InvalidScheduleError(f"fraction {fraction} outside [0, 1]")
        s = offer.earliest_start if start is None else start
        energies = tuple(
            c.min_energy + fraction * c.energy_flexibility for c in offer.profile
        )
        return cls(offer, s, energies)


@dataclass
class Schedule:
    """A set of scheduled flex-offers plus per-slice market transactions.

    ``market_buy``/``market_sell`` are non-negative kWh arrays over the
    planning horizon ``[horizon_start, horizon_start + horizon_length)``;
    they are filled in by the scheduler's analytic market settlement.
    """

    horizon_start: int
    horizon_length: int
    assignments: list[ScheduledFlexOffer] = field(default_factory=list)
    market_buy: np.ndarray | None = None
    market_sell: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.horizon_length <= 0:
            raise InvalidScheduleError("horizon_length must be positive")

    def __iter__(self) -> Iterator[ScheduledFlexOffer]:
        return iter(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)

    @property
    def horizon_end(self) -> int:
        """First slice after the planning horizon."""
        return self.horizon_start + self.horizon_length

    def add(self, assignment: ScheduledFlexOffer) -> None:
        """Append one scheduled flex-offer."""
        self.assignments.append(assignment)

    def flex_energy_series(self) -> TimeSeries:
        """Net scheduled flex-offer energy per slice over the horizon.

        Energy outside the horizon (offers allowed to run past the end) is
        truncated — mirroring a BRP that only accounts within its balancing
        window.
        """
        total = np.zeros(self.horizon_length)
        for a in self.assignments:
            lo = max(a.start, self.horizon_start)
            hi = min(a.end, self.horizon_end)
            for t in range(lo, hi):
                total[t - self.horizon_start] += a.energies[t - a.start]
        return TimeSeries(self.horizon_start, total)

    def total_flex_energy(self) -> float:
        """Total signed energy of all assignments (kWh)."""
        return float(sum(a.total_energy for a in self.assignments))


def sum_profiles(assignments: Sequence[ScheduledFlexOffer]) -> TimeSeries:
    """Sum the energy series of several assignments over their union window."""
    if not assignments:
        raise InvalidScheduleError("no assignments to sum")
    aligned = align_union([a.as_series() for a in assignments])
    total = aligned[0]
    for s in aligned[1:]:
        total = total + s
    return total
