"""Core data model: time axis, time series, flex-offers, schedules.

This package is MIRABEL's vocabulary — every other component (aggregation,
forecasting, scheduling, negotiation, node runtime) is expressed in terms of
these types.
"""

from .errors import (
    AggregationError,
    CommunicationError,
    DataManagementError,
    DisaggregationError,
    ForecastingError,
    InvalidFlexOfferError,
    InvalidScheduleError,
    MirabelError,
    NegotiationError,
    SchedulingError,
    TimeSeriesError,
)
from .flexoffer import EnergyConstraint, FlexOffer, Profile, flex_offer
from .schedule import Schedule, ScheduledFlexOffer
from .timebase import DEFAULT_AXIS, TimeAxis
from .timeseries import TimeSeries, align_union, zeros

__all__ = [
    "MirabelError",
    "InvalidFlexOfferError",
    "InvalidScheduleError",
    "DisaggregationError",
    "AggregationError",
    "TimeSeriesError",
    "ForecastingError",
    "SchedulingError",
    "NegotiationError",
    "DataManagementError",
    "CommunicationError",
    "EnergyConstraint",
    "Profile",
    "FlexOffer",
    "flex_offer",
    "ScheduledFlexOffer",
    "Schedule",
    "TimeAxis",
    "DEFAULT_AXIS",
    "TimeSeries",
    "align_union",
    "zeros",
]
