"""Time drivers: simulated/wall-clock equivalence and the thread-safe inbox.

Wall-clock behaviour is tested against a *fake* monotonic clock injected
into :class:`WallClockDriver` — every test here is deterministic and never
sleeps for real.  Times in the equivalence scenarios are dyadic rationals
(multiples of 1/4), which double-precision floats represent and add
exactly, so the fake-clock run hits every event at bit-identical times to
the simulated run.
"""

import threading

import pytest

from repro.core import flex_offer
from repro.core.errors import ServiceError
from repro.runtime import (
    BrpRuntimeService,
    ServiceConfig,
    SimulatedDriver,
    TimeDriver,
    WallClockDriver,
)
from repro.runtime.clock import ClockError
from repro.runtime.config import IngestConfig, SchedulingConfig
from repro.runtime.triggers import AgeTrigger, AnyTrigger, CountTrigger


class FakeClock:
    """Injectable monotonic clock: ``sleep`` advances fake time exactly."""

    def __init__(self, start: float = 0.0):
        self.t = float(start)
        self.sleeps = 0

    def monotonic(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        assert seconds > 0
        self.sleeps += 1
        self.t += seconds


def fake_driver(clock: FakeClock, **kwargs) -> WallClockDriver:
    kwargs.setdefault("slices_per_second", 1.0)
    kwargs.setdefault("max_wait_seconds", 1e9)
    return WallClockDriver(
        monotonic=clock.monotonic, sleep=clock.sleep, **kwargs
    )


def _config() -> ServiceConfig:
    return ServiceConfig(
        ingest=IngestConfig(batch_size=4),
        scheduling=SchedulingConfig(
            horizon_slices=96,
            scheduler_passes=1,
            trigger=AnyTrigger([CountTrigger(3), AgeTrigger(4)]),
            min_run_interval_slices=1.0,
        ),
    )


def _offer(est, tf=6, duration=2):
    return flex_offer([(1.0, 2.0)] * duration, earliest_start=est,
                      latest_start=est + tf)


#: Dyadic arrival times -> exactly representable, exactly summable floats.
ARRIVALS = [(0.25, 10), (1.5, 12), (2.75, 14), (4.25, 16), (6.5, 18), (8.75, 20)]


def _stream():
    return [(t, _offer(est)) for t, est in ARRIVALS]


class TestProtocol:
    def test_both_drivers_satisfy_protocol(self):
        assert isinstance(SimulatedDriver(), TimeDriver)
        assert isinstance(fake_driver(FakeClock()), TimeDriver)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ServiceError):
            WallClockDriver(slices_per_second=0)
        with pytest.raises(ServiceError):
            WallClockDriver(max_wait_seconds=0)


class TestWallClockDriver:
    def test_events_fire_in_time_order(self):
        clock = FakeClock()
        driver = fake_driver(clock)
        seen = []
        driver.schedule_at(3.0, lambda: seen.append(("b", driver.now)))
        driver.schedule_at(1.0, lambda: seen.append(("a", driver.now)))
        driver.schedule_after(5.0, lambda: seen.append(("c", driver.now)))
        driver.run_until(10.0)
        assert [name for name, _ in seen] == ["a", "b", "c"]
        assert [t for _, t in seen] == [1.0, 3.0, 5.0]
        assert driver.now >= 10.0
        assert driver.processed == 3

    def test_slices_per_second_scales_time(self):
        clock = FakeClock()
        driver = fake_driver(clock, slices_per_second=4.0)
        driver.run_until(10.0)  # 10 slices at 4 slices/sec = 2.5 wall seconds
        assert clock.t == pytest.approx(2.5)

    def test_late_schedule_runs_asap_instead_of_raising(self):
        clock = FakeClock()
        driver = fake_driver(clock)
        driver.run_until(5.0)
        seen = []
        driver.schedule_at(1.0, lambda: seen.append(driver.now))  # in the past
        driver.run_until(6.0)
        assert seen and seen[0] >= 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            fake_driver(FakeClock()).schedule_after(-1.0, lambda: None)

    def test_timers_beyond_end_stay_queued(self):
        clock = FakeClock()
        driver = fake_driver(clock)
        seen = []
        driver.schedule_at(7.0, lambda: seen.append(driver.now))
        driver.run_until(5.0)
        assert seen == []
        driver.run_until(10.0)
        assert seen == [7.0]


class TestInbox:
    def test_posted_work_runs_on_loop(self):
        clock = FakeClock()
        driver = fake_driver(clock)
        seen = []
        driver.post(lambda: seen.append("first"))
        driver.schedule_at(2.0, lambda: driver.post(lambda: seen.append("mid")))
        driver.run_until(4.0)
        assert seen == ["first", "mid"]

    def test_cross_thread_post(self):
        # Mechanical thread-safety: producers on foreign threads enqueue,
        # the loop thread drains in FIFO order.  The producer is joined
        # before the loop runs, keeping the test deterministic.
        clock = FakeClock()
        driver = fake_driver(clock)
        seen = []

        def producer():
            for i in range(50):
                driver.post(lambda i=i: seen.append(i))

        thread = threading.Thread(target=producer)
        thread.start()
        thread.join()
        driver.run_until(1.0)
        assert seen == list(range(50))
        assert driver.processed == 50

    def test_real_wait_interrupted_by_post(self):
        # Default (event-based) wait: a post from another thread wakes the
        # loop immediately, so the pending work runs long before the
        # 5-second timer horizon.  Bounded real time (< ~50 ms), no fake.
        driver = WallClockDriver(slices_per_second=1.0)
        seen = []
        timer = threading.Timer(0.01, lambda: driver.post(lambda: seen.append(driver.now)))
        timer.start()
        driver.run_until(0.05)
        timer.cancel()
        assert seen  # posted callback ran within the 50 ms window


class TestServiceEquivalence:
    def _run(self, driver):
        service = BrpRuntimeService(_config(), driver=driver)
        return service, service.run_stream(_stream(), 12.0)

    def test_wallclock_matches_simulated_bit_for_bit(self):
        _, simulated = self._run(SimulatedDriver())
        _, wallclock = self._run(fake_driver(FakeClock()))
        assert wallclock.offers_submitted == simulated.offers_submitted
        assert wallclock.offers_accepted == simulated.offers_accepted
        assert wallclock.offers_scheduled == simulated.offers_scheduled
        assert wallclock.offers_executed == simulated.offers_executed
        assert wallclock.offers_expired == simulated.offers_expired
        assert wallclock.scheduling_runs == simulated.scheduling_runs
        assert wallclock.aggregation_runs == simulated.aggregation_runs
        assert wallclock.trigger_fires == simulated.trigger_fires
        # Dyadic times are exact under both clocks: even the simulated-time
        # latency quantiles agree bit for bit.
        assert wallclock.latency_slices_p50 == simulated.latency_slices_p50
        assert wallclock.latency_slices_p95 == simulated.latency_slices_p95

    def test_wallclock_service_processes_posted_arrivals(self):
        clock = FakeClock()
        driver = fake_driver(clock)
        service = BrpRuntimeService(_config(), driver=driver)
        for t, offer in _stream():
            driver.schedule_at(
                t, lambda offer=offer: service.submit(offer)
            )
        driver.post(lambda: service.submit(_offer(9, tf=8)))
        driver.run_until(12.0)
        assert service.metrics.counter("ingest.accepted").value == len(ARRIVALS) + 1
        assert service.live_offers > 0
        assert clock.sleeps > 0  # time really advanced through the fake

    def test_service_without_queue_attr_under_wallclock(self):
        service = BrpRuntimeService(_config(), driver=fake_driver(FakeClock()))
        assert service.queue is None  # the simulated queue is a driver detail
        assert service.now == 0.0
