"""Unit tests for the discrete time axis."""

from datetime import datetime

import pytest

from repro.core.timebase import DEFAULT_AXIS, TimeAxis


class TestTimeAxisConstruction:
    def test_default_resolution_is_15_minutes(self):
        assert DEFAULT_AXIS.resolution_minutes == 15

    def test_rejects_non_positive_resolution(self):
        with pytest.raises(ValueError):
            TimeAxis(resolution_minutes=0)

    def test_rejects_resolution_not_dividing_a_day(self):
        with pytest.raises(ValueError):
            TimeAxis(resolution_minutes=7)

    @pytest.mark.parametrize("minutes,per_day", [(15, 96), (30, 48), (60, 24)])
    def test_slices_per_day(self, minutes, per_day):
        assert TimeAxis(minutes).slices_per_day == per_day

    def test_slices_per_week(self):
        assert TimeAxis(30).slices_per_week == 7 * 48

    def test_slices_per_hour(self):
        assert TimeAxis(15).slices_per_hour == 4


class TestConversions:
    def test_epoch_is_slice_zero(self):
        axis = TimeAxis(15, epoch=datetime(2010, 1, 4))
        assert axis.to_slice(datetime(2010, 1, 4)) == 0
        assert axis.to_datetime(0) == datetime(2010, 1, 4)

    def test_round_trip(self):
        axis = TimeAxis(15)
        for s in [0, 1, 95, 96, 1000]:
            assert axis.to_slice(axis.to_datetime(s)) == s

    def test_to_slice_floors_within_slice(self):
        axis = TimeAxis(15, epoch=datetime(2010, 1, 4))
        assert axis.to_slice(datetime(2010, 1, 4, 0, 14)) == 0
        assert axis.to_slice(datetime(2010, 1, 4, 0, 15)) == 1

    def test_hour_of_day(self):
        axis = TimeAxis(15)
        assert axis.hour_of_day(0) == 0
        assert axis.hour_of_day(4) == 1
        assert axis.hour_of_day(95) == 23
        assert axis.hour_of_day(96) == 0  # wraps to next day

    def test_slice_of_day_wraps(self):
        axis = TimeAxis(15)
        assert axis.slice_of_day(96) == 0
        assert axis.slice_of_day(100) == 4

    def test_day_of_week_starts_monday_at_epoch(self):
        axis = TimeAxis(15, epoch=datetime(2010, 1, 4))  # a Monday
        assert axis.day_of_week(0) == 0
        assert axis.day_of_week(96) == 1
        assert axis.day_of_week(96 * 7) == 0

    def test_day_index(self):
        axis = TimeAxis(15)
        assert axis.day_index(95) == 0
        assert axis.day_index(96) == 1


class TestDurations:
    def test_duration_minutes(self):
        assert TimeAxis(15).duration_minutes(4) == 60

    def test_slices_for_hours(self):
        assert TimeAxis(15).slices_for_hours(2) == 8
        assert TimeAxis(30).slices_for_hours(1.5) == 3

    def test_slices_for_hours_rejects_partial_slices(self):
        with pytest.raises(ValueError):
            TimeAxis(60).slices_for_hours(1.5)
