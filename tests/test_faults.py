"""Fault injection: hostile streams, crash/replay property, bus resilience.

The crash/replay property is the tentpole: killing a node at a random
instant and resuming from its ledger must be indistinguishable from never
having crashed — bit-identical state under simulated-time re-execution,
zero-loss under wall-clock projection.  The stream transforms and the bus
retry/park/replay path get direct deterministic coverage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import LedmsClient
from repro.api.config import IngestConfig, SchedulingConfig, ServiceConfig
from repro.api.ledger import MemoryEventLog, OfferLedger
from repro.core import flex_offer
from repro.core.errors import ServiceError
from repro.node import MessageBus, MessageType
from repro.runtime import (
    BusAdapter,
    BusConfig,
    ClusterConfig,
    ClusterRuntime,
    LoadGenerator,
    SimulatedDriver,
    WallClockDriver,
    apply_outages,
    continue_stream,
    duplicate_stream,
    parse_outage,
    remaining_arrivals,
    reorder_stream,
    run_stream_with_crash,
    state_fingerprint,
)
from repro.runtime.triggers import AgeTrigger, AnyTrigger, CountTrigger


def _config(batch=4) -> ServiceConfig:
    return ServiceConfig(
        ingest=IngestConfig(batch_size=batch),
        scheduling=SchedulingConfig(
            horizon_slices=96,
            scheduler_passes=1,
            trigger=AnyTrigger([CountTrigger(20), AgeTrigger(8)]),
            min_run_interval_slices=2.0,
        ),
    )


def _offer(est, tf=6, duration=2, lo=1.0, hi=2.0, **kw):
    return flex_offer(
        [(lo, hi)] * duration, earliest_start=est, latest_start=est + tf, **kw
    )


def _arrivals(n=10, spacing=1.0):
    return [(i * spacing, _offer(int(i * spacing) + 4)) for i in range(n)]


# ----------------------------------------------------------------------
class TestDuplicateStream:
    def test_reemits_same_objects_in_nondecreasing_time(self):
        arrivals = _arrivals(40)
        out = list(duplicate_stream(arrivals, 0.5, seed=1))
        assert len(out) > len(arrivals)
        times = [t for t, _ in out]
        assert times == sorted(times)
        originals = {id(o) for _, o in arrivals}
        assert all(id(o) in originals for _, o in out)  # same objects, not copies

    def test_rate_zero_is_identity(self):
        arrivals = _arrivals(10)
        assert list(duplicate_stream(arrivals, 0.0)) == arrivals

    def test_validation(self):
        with pytest.raises(ServiceError):
            list(duplicate_stream(_arrivals(2), 1.5))
        with pytest.raises(ServiceError):
            list(duplicate_stream(_arrivals(2), 0.5, delay_slices=0))


class TestReorderStream:
    def test_window_zero_is_identity(self):
        arrivals = _arrivals(10)
        assert list(reorder_stream(arrivals, 0.0)) == arrivals

    def test_preserves_times_and_offer_multiset(self):
        arrivals = _arrivals(60, spacing=0.5)
        out = list(reorder_stream(arrivals, 4.0, seed=2))
        assert [t for t, _ in out] == [t for t, _ in arrivals]
        assert sorted(o.offer_id for _, o in out) == sorted(
            o.offer_id for _, o in arrivals
        )
        assert [o.offer_id for _, o in out] != [o.offer_id for _, o in arrivals]

    def test_negative_window_raises(self):
        with pytest.raises(ServiceError):
            list(reorder_stream(_arrivals(2), -1.0))


class TestOutageSpecs:
    def test_parse_valid_spec(self):
        assert parse_outage("brp-1:20:36.5") == ("brp-1", 20.0, 36.5)

    @pytest.mark.parametrize(
        "spec", ["nonsense", "brp-1:20", ":20:36", "brp-1:x:36", "brp-1:36:20"]
    )
    def test_parse_rejects_malformed(self, spec):
        with pytest.raises(ServiceError):
            parse_outage(spec)

    def test_apply_rejects_unknown_brp(self):
        cluster = ClusterRuntime(ClusterConfig.uniform(2, _config()))
        with pytest.raises(ServiceError):
            apply_outages(cluster, [parse_outage("brp-9:1:2")])


# ----------------------------------------------------------------------
class TestBusResilience:
    def test_config_validation(self):
        with pytest.raises(ServiceError):
            BusConfig(max_retries=-1)
        with pytest.raises(ServiceError):
            BusConfig(max_retries=1, retry_backoff_slices=0)
        with pytest.raises(ServiceError):
            BusConfig(backoff_factor=0.5)

    def test_retry_exhaust_park_then_replay_on_recovery(self):
        driver = SimulatedDriver()
        adapter = BusAdapter(
            MessageBus(),
            driver,
            bus_config=BusConfig(max_retries=2, retry_backoff_slices=1.0),
        )
        received = []
        adapter.register("node", received.append)
        adapter.set_unreachable("node")
        assert not adapter.send("peer", "node", MessageType.MEASUREMENT, 7, 0)
        driver.run_until(driver.now + 10)  # backoff 1 + 2 slices, then exhaust
        assert adapter.retries == 2
        assert adapter.pending_retries == 0
        assert adapter.parked == 1
        assert received == []
        adapter.set_unreachable("node", False)
        driver.run_until(driver.now + 1)
        assert [m.payload for m in received] == [7]
        assert adapter.replayed == 1
        assert adapter.parked == 0

    def test_park_queue_is_bounded(self):
        driver = SimulatedDriver()
        adapter = BusAdapter(
            MessageBus(),
            driver,
            bus_config=BusConfig(
                max_retries=1, retry_backoff_slices=0.5, park_limit=2
            ),
        )
        adapter.register("node", lambda m: None)
        adapter.set_unreachable("node")
        for payload in range(5):
            adapter.send("peer", "node", MessageType.MEASUREMENT, payload, 0)
        driver.run_until(driver.now + 5)
        assert adapter.parked == 2  # oldest evicted, bound holds

    def test_outage_storm_loses_no_committed_schedules(self):
        config = ClusterConfig.uniform(
            3, _config(batch=8), bus=BusConfig(max_retries=3)
        )
        cluster = ClusterRuntime(config)
        apply_outages(cluster, [parse_outage("brp-1:20:36")])
        duration = 96.0
        streams = {
            name: LoadGenerator(rate_per_hour=30, seed=11 + i).stream(
                0.0, duration
            )
            for i, name in enumerate(cluster.clients)
        }
        report = cluster.run(streams, duration)
        assert report.bus_retries > 0
        assert report.bus_replayed > 0
        # Recovery replayed everything it parked: nothing still stranded.
        assert report.bus_parked == 0
        # The downed BRP's committed schedules survived the outage.
        brp1 = cluster.clients["brp-1"].service
        assert brp1.scheduled_total > 0


# ----------------------------------------------------------------------
DURATION = 48.0
_CACHE: dict = {}


def _hostile_fixture():
    """One hostile stream + its uninterrupted baseline, computed once."""
    if not _CACHE:
        stream = list(
            LoadGenerator(rate_per_hour=40, seed=3).stream(0.0, DURATION)
        )
        arrivals = list(duplicate_stream(stream, 0.1, seed=7))
        client = LedmsClient(_config(), ledger=OfferLedger(MemoryEventLog()))
        client.run_stream(iter(arrivals), DURATION)
        _CACHE["arrivals"] = arrivals
        _CACHE["baseline"] = state_fingerprint(client)
    return _CACHE["arrivals"], _CACHE["baseline"]


class TestCrashReplay:
    @settings(max_examples=6, deadline=None)
    @given(crash=st.floats(min_value=4.0, max_value=44.0))
    def test_crash_resume_matches_uninterrupted_run(self, crash):
        """Crash-kill at a random instant, replay, finish: bit-identical."""
        arrivals, baseline = _hostile_fixture()
        log = MemoryEventLog()
        client = LedmsClient(_config(), ledger=OfferLedger(log))
        assert (
            run_stream_with_crash(client, iter(arrivals), DURATION, crash)
            is None
        )
        resumed = LedmsClient.resume_from_ledger(log, _config())
        assert resumed.last_replay.mode == "reexecute"
        tail = remaining_arrivals(arrivals, resumed.service.now)
        continue_stream(resumed, tail, DURATION)
        assert state_fingerprint(resumed) == baseline

    def test_crash_outside_window_returns_report(self):
        arrivals, _ = _hostile_fixture()
        client = LedmsClient(_config(), ledger=OfferLedger(MemoryEventLog()))
        report = run_stream_with_crash(
            client, iter(arrivals), DURATION, DURATION + 100.0
        )
        assert report is not None
        assert report.offers_accepted > 0


class FakeClock:
    """Injectable monotonic clock: ``sleep`` advances fake time exactly."""

    def __init__(self, start: float = 0.0):
        self.t = float(start)

    def monotonic(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        assert seconds > 0
        self.t += seconds


def _wall_driver(clock: FakeClock, start: float = 0.0) -> WallClockDriver:
    return WallClockDriver(
        slices_per_second=1.0,
        start=start,
        monotonic=clock.monotonic,
        sleep=clock.sleep,
        max_wait_seconds=1e9,
    )


class TestWallClockCrashProjection:
    def test_projection_resume_is_zero_loss(self):
        """Wall-clock crash recovery: nothing accepted or committed is lost."""
        arrivals, _ = _hostile_fixture()
        clock = FakeClock()
        log = MemoryEventLog()
        client = LedmsClient(
            _config(),
            driver=_wall_driver(clock),
            ledger=OfferLedger(log),
        )
        crash = 24.0
        assert (
            run_stream_with_crash(client, iter(arrivals), DURATION, crash)
            is None
        )
        last = max(float(e["at"]) for e in log.replay())
        # The replacement process restarts on a fresh wall clock anchored
        # where the dead one stopped; projection folds the log into it.
        resumed = LedmsClient.resume_from_ledger(
            log,
            _config(),
            driver=_wall_driver(FakeClock(), start=last),
            mode="project",
        )
        assert resumed.last_replay.mode == "project"
        assert sorted(resumed.service._live) == sorted(client.service._live)
        assert (
            resumed.service._committed_start == client.service._committed_start
        )
        assert resumed.dead_letters() == client.dead_letters()
        # The resumed node finishes the interrupted window cleanly.
        tail = remaining_arrivals(arrivals, last)
        report = continue_stream(resumed, tail, DURATION)
        assert report.offers_accepted > 0
