"""Multi-node cluster runtime: bus adapter, TSO tier, outage degradation.

Tiny deterministic workloads (fixed seeds, short simulated windows) drive
the whole level-3 path: per-BRP streaming services over the shared
simulated driver, macro snapshots over the bus, TSO re-aggregation and
system-wide scheduling, and scheduled macros disaggregating back down to
prosumer micro-offer commitments.
"""

import numpy as np
import pytest

from repro.api import (
    ClusterConfig,
    ClusterRuntime,
    IngestConfig,
    SchedulingConfig,
    ServiceConfig,
    TsoConfig,
)
from repro.core import flex_offer
from repro.core.errors import CommunicationError, ServiceError
from repro.node import Message, MessageBus, MessageType
from repro.runtime import (
    BusAdapter,
    LoadGenerator,
    MetricsRegistry,
    SimulatedDriver,
    TsoRuntimeService,
    aggregate_registries,
)

TINY = ServiceConfig(
    scheduling=SchedulingConfig(scheduler_passes=1, horizon_slices=96),
    ingest=IngestConfig(batch_size=8),
)
TINY_TSO = TsoConfig(
    scheduler_passes=1, horizon_slices=96, trigger_refreshes=1,
    min_run_interval_slices=2.0,
)


def _cluster(brps=2, config=TINY, tso=TINY_TSO):
    return ClusterRuntime(ClusterConfig.uniform(brps, config, tso=tso))


def _streams(cluster, duration, rate=30.0, seed=11, stride=1):
    return {
        name: LoadGenerator(
            rate_per_hour=rate, seed=seed + index * stride
        ).stream(0.0, duration)
        for index, name in enumerate(cluster.clients)
    }


# ----------------------------------------------------------------------
class TestBusBestEffort:
    def test_try_send_unknown_recipient_drops_instead_of_raising(self):
        bus = MessageBus()
        bus.register("a", lambda m: None)
        message = Message("a", "ghost", MessageType.MEASUREMENT, 1, 0)
        assert bus.try_send(message) is False
        assert bus.dropped == 1
        assert bus.pending == 0

    def test_try_send_unreachable_recipient_drops_at_send_time(self):
        bus = MessageBus()
        bus.register("a", lambda m: None)
        bus.set_unreachable("a")
        assert bus.is_reachable("a") is False
        message = Message("x", "a", MessageType.MEASUREMENT, 1, 0)
        assert bus.try_send(message) is False
        assert bus.dropped == 1
        bus.set_unreachable("a", False)
        assert bus.is_reachable("a") is True
        assert bus.try_send(message) is True
        assert bus.dispatch_all() == 1

    def test_strict_send_still_raises(self):
        bus = MessageBus()
        with pytest.raises(CommunicationError):
            bus.send(Message("x", "ghost", MessageType.MEASUREMENT, 1, 0))


class TestBusAdapter:
    def test_messages_deliver_on_the_driver_loop(self):
        driver = SimulatedDriver()
        adapter = BusAdapter(MessageBus(), driver)
        received = []
        adapter.register("node", received.append)
        assert adapter.send("peer", "node", MessageType.MEASUREMENT, 41, 0)
        # Queued, not delivered: delivery is a driver event.
        assert received == []
        driver.run_until(driver.now)
        assert [m.payload for m in received] == [41]
        assert adapter.delivered == 1

    def test_unreachable_node_degrades_to_dropped(self):
        driver = SimulatedDriver()
        adapter = BusAdapter(MessageBus(), driver)
        adapter.register("node", lambda m: None)
        adapter.set_unreachable("node")
        assert not adapter.send("peer", "node", MessageType.MEASUREMENT, 1, 0)
        driver.run_until(driver.now)
        assert adapter.dropped == 1
        assert adapter.delivered == 0


# ----------------------------------------------------------------------
class TestClusterConfig:
    def test_uniform_names_and_validation(self):
        config = ClusterConfig.uniform(3, TINY)
        assert sorted(config.brps) == ["brp-0", "brp-1", "brp-2"]
        with pytest.raises(ServiceError):
            ClusterConfig.uniform(0)
        with pytest.raises(ServiceError):
            ClusterConfig(brps={})
        with pytest.raises(ServiceError):
            ClusterConfig(brps={"tso": TINY})

    def test_from_dict_sections_and_defaults(self):
        config = ClusterConfig.from_dict(
            {
                "brps": {
                    "north": {},
                    "south": {"scheduling": {"horizon_slices": 48}},
                },
                "defaults": {"ingest": {"batch_size": 16}},
                "tso": {"trigger_refreshes": 3},
            }
        )
        assert sorted(config.brps) == ["north", "south"]
        assert config.brps["north"].batch_size == 16
        assert config.brps["north"].horizon_slices == 192
        assert config.brps["south"].batch_size == 16
        assert config.brps["south"].horizon_slices == 48
        assert config.tso.trigger_refreshes == 3

    def test_from_dict_integer_brps(self):
        config = ClusterConfig.from_dict({"brps": 4})
        assert len(config.brps) == 4

    def test_from_dict_layers_over_a_base_config(self):
        """A base config (the CLI's flag-derived one) underlies the file."""
        base = ServiceConfig.from_flat(batch_size=8, scheduler_passes=3)
        config = ClusterConfig.from_dict(
            {
                "brps": {
                    "north": {},
                    "south": {"ingest": {"batch_size": 16}},
                },
            },
            base=base,
        )
        # Unmentioned fields keep the base values, not built-in defaults.
        assert config.brps["north"].batch_size == 8
        assert config.brps["north"].scheduler_passes == 3
        # File sections still win where they speak.
        assert config.brps["south"].batch_size == 16
        assert config.brps["south"].scheduler_passes == 3
        uniform = ClusterConfig.from_dict({"brps": 2}, base=base)
        assert uniform.brps["brp-0"].batch_size == 8

    def test_from_dict_rejects_unknown_keys_and_bad_specs(self):
        with pytest.raises(ServiceError):
            ClusterConfig.from_dict({"brp": 2})
        with pytest.raises(ServiceError):
            ClusterConfig.from_dict({"brps": 0})
        with pytest.raises(ServiceError):
            ClusterConfig.from_dict({"brps": True})
        with pytest.raises(ServiceError):
            ClusterConfig.from_dict({"tso": {"scheduler": "bogus"}})


# ----------------------------------------------------------------------
class TestClusterRuntime:
    def test_four_brp_tso_plan_roundtrips_to_micro_offers(self):
        """The acceptance-criterion run: 4 BRPs + TSO over the bus adapter.

        In simulated time, a committed TSO-level plan's disaggregated
        per-BRP schedules must round-trip all the way to prosumer
        micro-offer commitments, inside each offer's own window.
        """
        cluster = _cluster(brps=4)
        duration = 48.0
        report = cluster.run(_streams(cluster, duration), duration)

        assert report.brp_count == 4
        assert report.offers_accepted > 0
        # A committed TSO-level plan exists and flowed back down.
        assert report.tso_scheduling_runs > 0
        assert np.isfinite(report.tso_plan_cost)
        assert report.tso_macros_returned > 0
        assert report.remote_commits > 0
        assert report.bus_dropped == 0
        # Snapshots from every BRP reached the TSO.
        assert report.tso_macro_snapshots >= report.brp_count

        # Round trip: remote plans committed member starts inside each
        # micro offer's own admissible window on every BRP.
        remote_brps = 0
        for client in cluster.clients.values():
            service = client.service
            commits = service.metrics.counter("cluster.remote_commits").value
            if commits:
                remote_brps += 1
            checked = 0
            for offer_id, offer in service._live.items():
                start = service.committed_start(offer_id)
                if start is None:
                    continue
                assert offer.earliest_start <= start <= offer.latest_start
                checked += 1
            assert service.scheduled_total > 0 or checked == 0
        assert remote_brps == 4

    def test_cluster_run_is_deterministic(self):
        def run():
            cluster = _cluster(brps=2)
            report = cluster.run(_streams(cluster, 36.0), 36.0)
            # Offer ids are allocated from a process-global counter, so two
            # runs in one process see different absolute ids; compare the
            # id-independent shape of the committed state instead.
            starts = {
                name: sorted(
                    start
                    for oid in client.service._live
                    if (start := client.service.committed_start(oid))
                    is not None
                )
                for name, client in cluster.clients.items()
            }
            return (
                report.offers_accepted,
                report.offers_scheduled,
                report.tso_scheduling_runs,
                report.remote_commits,
                report.bus_delivered,
                starts,
            )

        assert run() == run()

    def test_unreachable_brp_degrades_gracefully_mid_stream(self):
        """One BRP lost mid-stream: its TSO traffic drops, the rest plan on."""
        cluster = _cluster(brps=3)
        duration = 48.0
        down = sorted(cluster.clients)[0]
        # Schedule the outage on the shared driver, mid-window.
        cluster.driver.schedule_at(
            duration / 2, lambda: cluster.set_unreachable(down)
        )
        report = cluster.run(_streams(cluster, duration), duration)

        # The cluster still commits TSO plans and micro schedules...
        assert report.tso_scheduling_runs > 0
        assert report.remote_commits > 0
        # ...while traffic to the dead BRP was dropped, never raised.
        assert report.bus_dropped > 0
        # The dead node kept running locally (its own plans still commit).
        assert report.brp_reports[down].offers_accepted > 0
        # Reachable BRPs kept receiving remote plans.
        alive = [name for name in cluster.clients if name != down]
        alive_commits = sum(
            cluster.clients[name]
            .service.metrics.counter("cluster.remote_commits")
            .value
            for name in alive
        )
        assert alive_commits > 0

    def test_consecutive_windows_replay_the_held_lookahead(self):
        """The arrival pulled to discover a closed window is not lost."""
        cluster = _cluster(brps=1)
        (name,) = cluster.clients
        offers = [
            flex_offer([(1.0, 2.0)] * 2, earliest_start=6, latest_start=40),
            flex_offer([(1.0, 2.0)] * 2, earliest_start=16, latest_start=40),
        ]
        arrivals = iter([(5.0, offers[0]), (15.0, offers[1])])
        # First window ends at 10: the t=15 arrival is pulled as lookahead.
        cluster.run({name: arrivals}, 10.0)
        report = cluster.run({name: arrivals}, 10.0)
        # Both offers were admitted across the two windows — the lookahead
        # was held and replayed, not dropped.
        assert report.offers_accepted == 2

    def test_rejects_streams_for_unknown_brps(self):
        cluster = _cluster(brps=2)
        with pytest.raises(ServiceError):
            cluster.run({"ghost": iter(())}, 8.0)

    def test_cluster_metrics_aggregate_counters_and_latency(self):
        cluster = _cluster(brps=2)
        duration = 36.0
        report = cluster.run(_streams(cluster, duration), duration)
        merged = cluster.metrics()
        per_brp = sum(
            client.service.metrics.counter("ingest.accepted").value
            for client in cluster.clients.values()
        )
        assert merged.counter("ingest.accepted").value == per_brp
        assert merged.counter("ingest.accepted").value == report.offers_accepted
        merged_latency = merged.histogram("latency.e2e_slices")
        assert merged_latency.count == sum(
            client.service.metrics.histogram("latency.e2e_slices").count
            for client in cluster.clients.values()
        )
        assert report.latency_slices_p95 == merged_latency.p95


# ----------------------------------------------------------------------
class TestTsoRuntimeService:
    def _tso(self, **kwargs):
        driver = SimulatedDriver()
        adapter = BusAdapter(MessageBus(), driver)
        tso = TsoRuntimeService(
            TsoConfig(trigger_refreshes=2, min_run_interval_slices=0.0),
            adapter=adapter,
            **kwargs,
        )
        return tso, adapter, driver

    def test_snapshot_replaces_previous_macros(self):
        from repro.aggregation import aggregate_group

        tso, adapter, driver = self._tso()
        offer_a = flex_offer([(1.0, 2.0)] * 2, earliest_start=4, latest_start=10)
        offer_b = flex_offer([(1.0, 2.0)] * 2, earliest_start=4, latest_start=10)
        macro_1 = aggregate_group([offer_a])
        macro_2 = aggregate_group([offer_b])
        tso.receive_snapshot("brp-0", (macro_1,))
        assert tso.macro_count == 1
        tso.receive_snapshot("brp-0", (macro_2,))
        # The second snapshot replaced the first, not accumulated with it.
        assert tso.macro_count == 1
        assert tso._macro_home == {macro_2.offer_id: "brp-0"}

    def test_snapshot_refresh_dirties_only_the_senders_keys(self):
        from repro.aggregation import aggregate_group

        tso, adapter, driver = self._tso()
        macro_a = aggregate_group(
            [flex_offer([(1.0, 2.0)] * 2, earliest_start=4, latest_start=10)]
        )
        macro_b = aggregate_group(
            [flex_offer([(0.5, 1.5)] * 3, earliest_start=40, latest_start=60)]
        )
        tso.receive_snapshot("brp-0", (macro_a,))
        tso.receive_snapshot("brp-1", (macro_b,))
        tso.maybe_schedule(force=True)
        assert not tso.session.dirty  # drained by the run
        keys_b = set(tso._keys_by_brp["brp-1"])
        assert keys_b
        # A refreshed snapshot from brp-0 dirties its previous plan keys
        # and nothing of brp-1's.
        replacement = aggregate_group(
            [flex_offer([(1.0, 2.0)] * 2, earliest_start=5, latest_start=11)]
        )
        tso.receive_snapshot("brp-0", (replacement,))
        assert tso.session.dirty
        assert tso.session.dirty.isdisjoint(keys_b)

    def test_adaptive_cooldown_tightens_after_long_waits(self):
        from repro.aggregation import aggregate_group

        driver = SimulatedDriver()
        adapter = BusAdapter(MessageBus(), driver)
        tso = TsoRuntimeService(
            TsoConfig(
                trigger_refreshes=3,
                min_run_interval_slices=4.0,
                target_p95_slices=2.0,
            ),
            adapter=adapter,
        )
        assert tso._cooldown is not None
        macro = aggregate_group(
            [flex_offer([(1.0, 2.0)] * 2, earliest_start=4, latest_start=30)]
        )
        tso.receive_snapshot("brp-0", (macro,))
        driver.run_until(20.0)  # the snapshot waits 20 slices before a run
        tso.run_scheduling()
        assert tso._cooldown.trigger_refreshes == 2
        assert tso._cooldown.min_run_interval_slices == 2.0
        assert (
            tso.metrics.counter("trigger.adaptive_adjustments").value == 1
        )
        # The gate reads the tuned values, not the static config.
        assert tso.config.trigger_refreshes == 3

    def test_rejects_unexpected_message_types(self):
        tso, adapter, driver = self._tso()
        adapter.send("x", tso.name, MessageType.MEASUREMENT, 1, 0)
        with pytest.raises(CommunicationError):
            driver.run_until(driver.now)

    def test_metrics_registry_merge_is_order_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(3)
        b.counter("x").inc(4)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        merged = aggregate_registries([a, b])
        assert merged.counter("x").value == 7
        assert merged.histogram("h").count == 2
        assert merged.histogram("h").total == pytest.approx(4.0)

    def test_histogram_merge_stays_fair_past_reservoir_saturation(self):
        """Pooled quantiles must weight saturated sources by population."""
        from repro.runtime import Histogram

        fast = Histogram("h", reservoir_size=100)
        slow = Histogram("h", reservoir_size=100)
        for _ in range(1000):
            fast.observe(1.0)
        for _ in range(1000):
            slow.observe(20.0)
        merged = Histogram("h", reservoir_size=100)
        merged.merge_with(fast)
        merged.merge_with(slow)
        assert merged.count == 2000
        assert merged.total == pytest.approx(21000.0)
        # Equal populations: each source holds half the merged reservoir,
        # so both tails are visible — not ~93% of whichever merged first.
        assert merged.quantile(0.25) == 1.0
        assert merged.quantile(0.75) == 20.0
