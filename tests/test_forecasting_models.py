"""Tests for the HWT, EGRV and naive forecast models."""

import numpy as np
import pytest

from repro.core import TimeSeries
from repro.core.errors import ForecastingError
from repro.core.timebase import TimeAxis
from repro.datagen import DemandModel, uk_style_demand
from repro.datagen.demand import HALF_HOURLY
from repro.forecasting import (
    EGRVModel,
    HoltWintersTaylor,
    MovingAverageModel,
    NaiveModel,
    SeasonalNaiveModel,
    smape,
)

AXIS = TimeAxis(30)
PER_DAY = AXIS.slices_per_day
PER_WEEK = AXIS.slices_per_week


@pytest.fixture(scope="module")
def demand():
    return uk_style_demand(42)


@pytest.fixture(scope="module")
def split(demand):
    return demand.split(demand.start + 35 * PER_DAY)


class TestNaiveModels:
    def test_naive_repeats_last_value(self):
        model = NaiveModel().fit(TimeSeries(0, [1.0, 2.0, 5.0]))
        forecast = model.forecast(3)
        assert list(forecast.values) == [5.0, 5.0, 5.0]
        assert forecast.start == 3

    def test_naive_update_shifts(self):
        model = NaiveModel().fit(TimeSeries(0, [1.0]))
        error = model.update(4.0)
        assert error == 3.0
        assert model.forecast(1).values[0] == 4.0

    def test_naive_requires_fit(self):
        with pytest.raises(ForecastingError):
            NaiveModel().forecast(1)

    def test_seasonal_naive_repeats_season(self):
        model = SeasonalNaiveModel(2).fit(TimeSeries(0, [1.0, 2.0, 3.0, 4.0]))
        assert list(model.forecast(4).values) == [3.0, 4.0, 3.0, 4.0]

    def test_seasonal_naive_needs_full_season(self):
        with pytest.raises(ForecastingError):
            SeasonalNaiveModel(10).fit(TimeSeries(0, [1.0, 2.0]))

    def test_seasonal_naive_update_rolls_buffer(self):
        model = SeasonalNaiveModel(2).fit(TimeSeries(0, [1.0, 2.0]))
        model.update(5.0)
        assert list(model.forecast(2).values) == [2.0, 5.0]

    def test_moving_average(self):
        model = MovingAverageModel(2).fit(TimeSeries(0, [1.0, 2.0, 4.0]))
        assert model.forecast(2).values[0] == pytest.approx(3.0)

    def test_invalid_constructor_args(self):
        with pytest.raises(ForecastingError):
            SeasonalNaiveModel(0)
        with pytest.raises(ForecastingError):
            MovingAverageModel(-1)


class TestHoltWintersTaylor:
    def test_rejects_bad_periods(self):
        with pytest.raises(ForecastingError):
            HoltWintersTaylor(())
        with pytest.raises(ForecastingError):
            HoltWintersTaylor((336, 48))  # not increasing
        with pytest.raises(ForecastingError):
            HoltWintersTaylor((1,))

    def test_parameter_space_dimension(self):
        model = HoltWintersTaylor((48, 336))
        assert model.parameter_space.dimension == 4  # alpha, 2 gammas, phi

    def test_needs_two_longest_cycles(self, demand):
        short = demand.first(PER_WEEK)  # one week only
        with pytest.raises(ForecastingError):
            HoltWintersTaylor((48, 336)).fit(short)

    def test_wrong_parameter_count(self, split):
        train, _ = split
        with pytest.raises(ForecastingError):
            HoltWintersTaylor((48, 336)).fit(train, np.array([0.1, 0.1]))

    def test_forecast_start_follows_history(self, split):
        train, _ = split
        model = HoltWintersTaylor((48, 336)).fit(train)
        forecast = model.forecast(10)
        assert forecast.start == train.end
        assert len(forecast) == 10

    def test_beats_level_only_baseline(self, split):
        """On multi-seasonal demand, HWT must massively beat a flat forecast."""
        train, test = split
        model = HoltWintersTaylor((48, 336)).fit(train)
        horizon = PER_DAY
        hwt_error = smape(test.values[:horizon], model.forecast(horizon).values)
        flat_error = smape(
            test.values[:horizon], np.full(horizon, train.values.mean())
        )
        assert hwt_error < 0.5 * flat_error

    def test_estimated_hwt_comparable_to_seasonal_naive(self, split):
        from repro.forecasting import EstimationBudget, RandomRestartNelderMead

        train, test = split
        horizon = PER_DAY
        hwt = HoltWintersTaylor((48, 336))
        result = RandomRestartNelderMead().estimate(
            lambda p: hwt.insample_error(train, p),
            hwt.parameter_space,
            EstimationBudget.of_evaluations(40),
            rng=np.random.default_rng(0),
        )
        hwt.fit(train, result.params)
        naive = SeasonalNaiveModel(PER_WEEK).fit(train)
        hwt_error = smape(test.values[:horizon], hwt.forecast(horizon).values)
        naive_error = smape(test.values[:horizon], naive.forecast(horizon).values)
        assert hwt_error < naive_error * 2.0

    def test_update_matches_refit_predictions(self, demand):
        """Incremental updates must track the batch recursion exactly."""
        n_train = 2 * PER_WEEK + 5
        train = demand.first(n_train)
        rest = demand.window(demand.start + n_train, demand.start + n_train + 20)
        incremental = HoltWintersTaylor((48, 336)).fit(train)
        for v in rest.values:
            incremental.update(float(v))
        batch = HoltWintersTaylor((48, 336)).fit(
            demand.first(n_train + 20), incremental.params
        )
        # identical init window (first 2*336 values) => identical state
        np.testing.assert_allclose(
            incremental.forecast(5).values, batch.forecast(5).values, rtol=1e-9
        )

    def test_error_grows_with_horizon(self, split):
        train, test = split
        model = HoltWintersTaylor((48, 336)).fit(train)
        short = smape(test.values[:12], model.forecast(12).values)
        long = smape(test.values[: 4 * PER_DAY], model.forecast(4 * PER_DAY).values)
        assert long >= short * 0.8  # long horizons are never much better

    def test_insample_error_scores_past_warmup(self, split):
        train, _ = split
        model = HoltWintersTaylor((48, 336))
        err = model.insample_error(train, model._default_params())
        assert 0 < err < 0.2

    def test_params_property_requires_fit(self):
        with pytest.raises(ForecastingError):
            HoltWintersTaylor((48, 336)).params

    def test_rejects_nonpositive_horizon(self, split):
        train, _ = split
        model = HoltWintersTaylor((48, 336)).fit(train)
        with pytest.raises(ForecastingError):
            model.forecast(0)


class TestEGRV:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(7)
        demand, temp = DemandModel().generate(
            0, 42 * PER_DAY, rng, return_temperature=True
        )
        train, test = demand.split(35 * PER_DAY)
        model = EGRVModel(AXIS, temperature=temp).fit(train)
        return model, train, test

    def test_needs_three_weeks(self):
        short = uk_style_demand(14)
        with pytest.raises(ForecastingError):
            EGRVModel(AXIS).fit(short)

    def test_one_equation_per_period(self, fitted):
        model, _, _ = fitted
        assert model._coefficients.shape == (PER_DAY, EGRVModel._N_FEATURES)

    def test_day_ahead_accuracy(self, fitted):
        model, _, test = fitted
        error = smape(test.values[:PER_DAY], model.forecast(PER_DAY).values)
        assert error < 0.05

    def test_beats_flat_baseline(self, fitted):
        model, train, test = fitted
        horizon = PER_DAY
        egrv_error = smape(test.values[:horizon], model.forecast(horizon).values)
        flat_error = smape(
            test.values[:horizon], np.full(horizon, train.values.mean())
        )
        assert egrv_error < flat_error

    def test_works_without_temperature(self):
        demand = uk_style_demand(28)
        train = demand.first(21 * PER_DAY)
        model = EGRVModel(AXIS).fit(train)
        forecast = model.forecast(PER_DAY)
        assert len(forecast) == PER_DAY
        assert np.isfinite(forecast.values).all()

    def test_parallel_fit_matches_sequential(self):
        demand = uk_style_demand(28)
        train = demand.first(21 * PER_DAY)
        sequential = EGRVModel(AXIS, n_jobs=1).fit(train)
        parallel = EGRVModel(AXIS, n_jobs=4).fit(train)
        np.testing.assert_allclose(
            sequential._coefficients, parallel._coefficients, rtol=1e-12
        )

    def test_update_returns_one_step_error(self, fitted):
        model, _, test = fitted
        predicted = model.forecast(1).values[0]
        error = model.update(float(test.values[0]))
        assert error == pytest.approx(test.values[0] - predicted)

    def test_ridge_parameter_is_tunable(self, fitted):
        _, train, _ = fitted
        weak = EGRVModel(AXIS).fit(train, np.array([0.0]))
        strong = EGRVModel(AXIS).fit(train, np.array([100.0]))
        assert not np.allclose(weak._coefficients, strong._coefficients)

    def test_invalid_n_jobs(self):
        with pytest.raises(ForecastingError):
            EGRVModel(AXIS, n_jobs=0)
