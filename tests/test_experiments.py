"""Smoke + shape tests for the experiment harnesses (tiny scales).

The benchmarks run these at full scale; here we verify that every harness
executes, returns well-formed results and preserves its key orderings even
at toy sizes, so refactorings cannot silently break the reproduction.
"""

import numpy as np
import pytest

from repro.experiments import (
    format_table,
    intraday_scenario,
    run_aggregation_scheduling_interplay,
    run_balancing,
    run_exhaustive,
    run_fig5,
    run_fig6,
    run_pubsub_savings,
    scale_factor,
)
from repro.experiments.ablations import (
    run_flexibility_influence,
    run_hybrid_scheduling,
    run_price_grouping,
)
from repro.node import ScenarioConfig


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("t", ["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert lines[0] == "== t =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_scale_factor_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5
        monkeypatch.setenv("REPRO_SCALE", "junk")
        assert scale_factor() == 1.0


class TestFig5Harness:
    def test_points_and_orderings(self):
        result = run_fig5(total_offers=4000, n_points=2, verbose=False)
        combos = {p.combination for p in result.points}
        assert combos == {"P0", "P1", "P2", "P3"}
        for combo in combos:
            series = result.series(combo)
            assert [p.offer_count for p in series] == [2000, 4000]
            # cumulative time is non-decreasing
            assert series[1].aggregation_time_s >= series[0].aggregation_time_s
        final = {c: result.series(c)[-1] for c in combos}
        assert final["P0"].aggregate_count >= final["P3"].aggregate_count
        assert final["P0"].flexibility_loss_per_offer == 0.0

    def test_disaggregation_slope_present(self):
        result = run_fig5(total_offers=2000, n_points=1, verbose=False)
        assert result.disaggregation_slope == result.disaggregation_slope  # not NaN


class TestFig6Harness:
    def test_scenario_scales_with_offers(self):
        small = intraday_scenario(10, seed=1)
        large = intraday_scenario(1000, seed=1)
        assert large.offer_count == 1000
        assert large.net_forecast.values.max() > small.net_forecast.values.max()

    def test_curves_and_rows(self):
        result = run_fig6(
            sizes=[10], budgets={10: 0.3}, repetitions=1, verbose=False
        )
        curve = result.curves[(10, "greedy-search")]
        assert curve
        costs = [c for _, c in curve]
        assert costs == sorted(costs, reverse=True)
        assert len(result.rows()) == 3  # three checkpoints for one size


class TestExhaustiveHarness:
    def test_small_instance(self):
        result = run_exhaustive(
            n_offers=3, time_flex=4, metaheuristic_seconds=0.2, verbose=False
        )
        assert result.solution_count == 5**3
        assert result.greedy_cost >= result.optimal_cost - 1e-9
        assert result.greedy_gap >= 0


class TestBalancingHarness:
    def test_small_day(self):
        config = ScenarioConfig(seed=1, n_brps=1, prosumers_per_brp=6)
        report = run_balancing(config=config, verbose=False)
        assert report.offers_submitted >= 0
        assert report.imbalance_after <= report.imbalance_before + 1e-9


class TestInterplayHarnesses:
    def test_agg_sched_tradeoff_direction(self):
        points = run_aggregation_scheduling_interplay(
            n_offers=800, tolerances=[0, 64], verbose=False
        )
        by_tol = {p.tolerance: p for p in points}
        assert by_tol[64].aggregate_count < by_tol[0].aggregate_count
        assert by_tol[64].scheduling_time_s <= by_tol[0].scheduling_time_s + 0.5

    def test_pubsub_rates_monotone(self):
        rates = run_pubsub_savings(
            thresholds=[0.0, 0.05], n_days=28, stream_days=1, verbose=False
        )
        assert rates[0.05] <= rates[0.0]


class TestAblationHarnesses:
    def test_flexibility_influence_space_growth(self):
        points = run_flexibility_influence(
            n_offers=8, flexibilities=[0, 4], budget_seconds=0.2, verbose=False
        )
        assert points[0].solution_space == 1
        assert points[1].solution_space == 5**8

    def test_hybrid_never_worse_than_pure(self):
        costs = run_hybrid_scheduling(
            n_offers=60, budget_seconds=0.4, verbose=False
        )
        assert costs["hybrid-ea"] <= costs["pure-ea"] + 1e-9

    def test_price_grouping_splits_tariffs(self):
        counts = run_price_grouping(n_offers=2000, verbose=False)
        assert counts["price-exact"] >= counts["price-blind"]


class TestForecastHarnesses:
    def test_fig4a_tiny_budget(self):
        from repro.experiments import run_fig4a

        result = run_fig4a(budget_seconds=0.4, n_days=22, verbose=False)
        assert set(result.final_errors) == {
            "random-restart-nelder-mead", "simulated-annealing", "random-search",
        }
        assert all(0 <= e <= 1 for e in result.final_errors.values())
        assert len(result.rows()) == 8

    def test_fig4b_tiny(self):
        from repro.experiments import run_fig4b

        result = run_fig4b(
            horizons_days=[0.25, 1.0], n_days=24, train_days=20, verbose=False
        )
        rows = result.rows()
        assert len(rows) == 2
        for _, demand_error, supply_error in rows:
            assert 0 <= demand_error <= 1
            assert 0 <= supply_error <= 1


class TestHierarchyForecastingHarness:
    def test_advisor_study_shapes(self):
        from repro.experiments.hierarchy_forecasting import run_hierarchy_forecasting

        study = run_hierarchy_forecasting(
            n_brps=2, groups_per_brp=2, n_days=15, verbose=False
        )
        assert study.all_models_count == 7  # 4 leaves + 2 BRPs + TSO
        assert study.leaves_only_count == 4
        assert study.advised_count <= study.leaves_only_count + 1
        assert set(study.advised_modes.values()) <= {"own-model", "aggregate"}


class TestCli:
    def test_list_positional(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "balancing" in out

    def test_list_flag(self, capsys):
        from repro.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "loadtest" in out

    def test_unknown_experiment_exit_code(self, capsys):
        from repro.__main__ import EXIT_UNKNOWN_EXPERIMENT, main

        assert main(["not-an-experiment"]) == EXIT_UNKNOWN_EXPERIMENT
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_experiment_exit_code(self, capsys):
        from repro.__main__ import EXIT_UNKNOWN_EXPERIMENT, main

        assert main([]) == EXIT_UNKNOWN_EXPERIMENT

    def test_failing_experiment_exit_code(self, capsys, monkeypatch):
        from repro import __main__ as cli

        def boom():
            raise RuntimeError("injected failure")

        monkeypatch.setitem(cli.EXPERIMENTS, "fig5", (boom, "broken"))
        assert cli.main(["fig5"]) == cli.EXIT_EXPERIMENT_FAILED
        assert "failed" in capsys.readouterr().err
        assert cli.EXIT_EXPERIMENT_FAILED != cli.EXIT_UNKNOWN_EXPERIMENT

    def test_loadtest_smoke(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "loadtest",
                "--rate", "20",
                "--duration", "24",
                "--seed", "1",
                "--trigger-count", "20",
                "--batch", "8",
                "--passes", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "offers/sec" in out and "p95" in out

    def test_serve_smoke(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "serve",
                "--rate", "20",
                "--duration", "24",
                "--seed", "1",
                "--report-every", "12",
                "--batch", "8",
                "--passes", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[t=" in out and "offers/sec" in out
