"""Unit tests for the streaming runtime building blocks.

Clock/event queue, metrics registry, trigger policies, the ingest stage and
the Poisson load generator — the service loop itself is covered end-to-end
in ``test_runtime_service.py``.
"""

import numpy as np
import pytest

from repro.aggregation import AggregationParameters, AggregationPipeline
from repro.core import flex_offer
from repro.core.errors import ServiceError
from repro.core.timebase import DEFAULT_AXIS
from repro.datamgmt import LedmsStore
from repro.runtime import (
    AdaptiveCooldown,
    AdaptiveTrigger,
    AgeTrigger,
    AnyTrigger,
    ClockError,
    CountTrigger,
    EventQueue,
    FlexOfferIngest,
    ImbalanceTrigger,
    LoadGenerator,
    MetricsRegistry,
    SimulatedClock,
    TriggerContext,
)


def _offer(est, tf=4, duration=2, lo=1.0, hi=2.0, **kw):
    return flex_offer(
        [(lo, hi)] * duration, earliest_start=est, latest_start=est + tf, **kw
    )


class TestClock:
    def test_advance_monotonic(self):
        clock = SimulatedClock()
        clock.advance_to(3.5)
        assert clock.now == 3.5
        assert clock.now_slice == 3
        with pytest.raises(ClockError):
            clock.advance_to(2.0)

    def test_events_run_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(5, lambda: seen.append("c"))
        queue.schedule_at(1, lambda: seen.append("a"))
        queue.schedule_at(3, lambda: seen.append("b"))
        queue.run_all()
        assert seen == ["a", "b", "c"]

    def test_equal_times_run_fifo(self):
        queue = EventQueue()
        seen = []
        for tag in "abc":
            queue.schedule_at(2, lambda tag=tag: seen.append(tag))
        queue.run_all()
        assert seen == ["a", "b", "c"]

    def test_run_until_stops_and_advances_clock(self):
        queue = EventQueue()
        seen = []
        queue.schedule_at(1, lambda: seen.append(1))
        queue.schedule_at(10, lambda: seen.append(10))
        assert queue.run_until(5) == 1
        assert seen == [1]
        assert queue.clock.now == 5.0
        assert len(queue) == 1

    def test_handlers_may_reschedule(self):
        queue = EventQueue()
        seen = []

        def tick():
            seen.append(queue.clock.now)
            if queue.clock.now < 3:
                queue.schedule_after(1, tick)

        queue.schedule_at(1, tick)
        queue.run_until(10)
        assert seen == [1.0, 2.0, 3.0]

    def test_cannot_schedule_in_the_past(self):
        queue = EventQueue()
        queue.clock.advance_to(5)
        with pytest.raises(ClockError):
            queue.schedule_at(4, lambda: None)
        with pytest.raises(ClockError):
            queue.schedule_after(-1, lambda: None)


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ServiceError):
            counter.inc(-1)

    def test_gauge_up_and_down(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_exact_quantiles(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.p50 == pytest.approx(50.5)
        assert histogram.p95 == pytest.approx(95.05)

    def test_histogram_reservoir_bounds_memory(self):
        histogram = MetricsRegistry().histogram("h", reservoir_size=64)
        for value in range(1000):
            histogram.observe(value)
        assert histogram.count == 1000
        assert len(histogram._values) == 64
        # Sampled quantile stays in the observed range.
        assert 0 <= histogram.p50 <= 999

    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(ServiceError):
            registry.gauge("a")

    def test_render_and_dict(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(1.0)
        snapshot = registry.as_dict()
        assert snapshot["c"] == 2
        assert snapshot["h"]["count"] == 1
        assert "c: 2" in registry.render()


class TestTriggers:
    def _context(self, **kw):
        defaults = dict(
            now=0.0,
            offers_since_last_run=0,
            oldest_unscheduled_age=0.0,
            unscheduled_energy_kwh=0.0,
        )
        defaults.update(kw)
        return TriggerContext(**defaults)

    def test_count_trigger(self):
        trigger = CountTrigger(10)
        assert not trigger.should_fire(self._context(offers_since_last_run=9))
        assert trigger.should_fire(self._context(offers_since_last_run=10))

    def test_age_trigger(self):
        trigger = AgeTrigger(8)
        assert not trigger.should_fire(self._context(oldest_unscheduled_age=7.9))
        assert trigger.should_fire(self._context(oldest_unscheduled_age=8.0))

    def test_imbalance_trigger(self):
        trigger = ImbalanceTrigger(100.0)
        assert not trigger.should_fire(self._context(unscheduled_energy_kwh=99))
        assert trigger.should_fire(self._context(unscheduled_energy_kwh=100))

    def test_any_trigger_composite(self):
        trigger = AnyTrigger([CountTrigger(10), AgeTrigger(8)])
        context = self._context(offers_since_last_run=3, oldest_unscheduled_age=9)
        assert trigger.should_fire(context)
        assert trigger.fired_names(context) == ["AgeTrigger"]
        assert not trigger.should_fire(self._context())

    def test_fired_names_order_is_construction_order(self):
        policies = [AgeTrigger(8), CountTrigger(10), ImbalanceTrigger(50.0)]
        context = self._context(
            offers_since_last_run=10,
            oldest_unscheduled_age=9,
            unscheduled_energy_kwh=60.0,
        )
        assert AnyTrigger(policies).fired_names(context) == [
            "AgeTrigger", "CountTrigger", "ImbalanceTrigger",
        ]
        assert AnyTrigger(list(reversed(policies))).fired_names(context) == [
            "ImbalanceTrigger", "CountTrigger", "AgeTrigger",
        ]

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ServiceError):
            CountTrigger(0)
        with pytest.raises(ServiceError):
            AgeTrigger(-1)
        with pytest.raises(ServiceError):
            ImbalanceTrigger(0)
        with pytest.raises(ServiceError):
            AnyTrigger([])


class TestIngest:
    def _ingest(self, batch_size=4, store=None):
        pipeline = AggregationPipeline(
            AggregationParameters(8, 8, name="test")
        )
        return FlexOfferIngest(pipeline, store=store, batch_size=batch_size)

    def test_accepts_and_batches(self):
        ingest = self._ingest(batch_size=2)
        assert ingest.submit(_offer(10), now=0) is not None
        assert not ingest.batch_full
        assert ingest.submit(_offer(11), now=0) is not None
        assert ingest.batch_full
        updates = ingest.flush(now=0)
        assert updates and ingest.pending_updates == 0
        assert ingest.pipeline.input_count == 2

    def test_rejects_closed_window(self):
        ingest = self._ingest()
        assert ingest.submit(_offer(5, tf=2), now=10) is None
        assert ingest.metrics.counter("ingest.rejected").value == 1

    def test_rejects_zero_energy(self):
        ingest = self._ingest()
        offer = _offer(10, lo=0.0, hi=0.0)
        assert ingest.submit(offer, now=0) is None

    def test_clips_partially_passed_window(self):
        ingest = self._ingest()
        accepted = ingest.submit(_offer(5, tf=10), now=8)
        assert accepted is not None
        assert accepted.earliest_start == 8
        assert accepted.latest_start == 15

    def test_lifecycle_recorded_in_store(self):
        store = LedmsStore(DEFAULT_AXIS)
        ingest = self._ingest(store=store)
        offer = ingest.submit(_offer(10), now=0)
        assert store.offer_state(offer.offer_id) == "accepted"
        ingest.flush(now=0)
        assert store.offer_state(offer.offer_id) == "aggregated"
        ingest.retire([offer], now=20, state="expired")
        assert store.offer_state(offer.offer_id) == "expired"
        counts = store.state_counts()
        assert counts["expired"] == 1

    def test_flush_exposes_pipeline_dirty_set(self):
        ingest = self._ingest(batch_size=1)
        offer = ingest.submit(_offer(10), now=0)
        ingest.flush(now=0)
        assert ingest.last_dirty.created
        group_id = next(iter(ingest.last_dirty.created))
        ingest.retire([offer], now=20, state="expired")
        ingest.flush(now=20)
        assert ingest.last_dirty.deleted == {group_id}
        ingest.flush(now=21)  # nothing pending: the dirty set drains
        assert not ingest.last_dirty

    def test_retire_flows_deletes_through_pipeline(self):
        ingest = self._ingest(batch_size=1)
        offer = ingest.submit(_offer(10), now=0)
        ingest.flush(now=0)
        assert ingest.pipeline.input_count == 1
        ingest.retire([offer], now=20, state="expired")
        ingest.flush(now=20)
        assert ingest.pipeline.input_count == 0


class TestLoadGenerator:
    def test_deterministic_stream(self):
        first = list(LoadGenerator(rate_per_hour=30, seed=7).stream(0, 48))
        second = list(LoadGenerator(rate_per_hour=30, seed=7).stream(0, 48))
        assert len(first) == len(second) > 0
        for (t1, o1), (t2, o2) in zip(first, second):
            assert t1 == t2
            assert o1.earliest_start == o2.earliest_start
            assert o1.profile == o2.profile

    def test_arrivals_increasing_within_window(self):
        events = list(LoadGenerator(rate_per_hour=60, seed=1).stream(10, 48))
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert all(10 <= t < 58 for t in times)

    def test_offers_ingestible_on_arrival(self):
        for t, offer in LoadGenerator(rate_per_hour=40, seed=3).stream(0, 96):
            assert offer.creation_time <= offer.earliest_start
            assert offer.earliest_start > t

    def test_rate_scales_volume(self):
        slow = LoadGenerator(rate_per_hour=10, seed=5).offers(0, 24 * 4)
        fast = LoadGenerator(rate_per_hour=100, seed=5).offers(0, 24 * 4)
        assert len(fast) > 5 * len(slow)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ServiceError):
            LoadGenerator(rate_per_hour=0)

    def test_explicit_rng_wins_over_seed(self):
        rng = np.random.default_rng(123)
        a = LoadGenerator(rate_per_hour=20, seed=0, rng=rng).offers(0, 48)
        b = LoadGenerator(rate_per_hour=20, seed=0, rng=np.random.default_rng(123)).offers(0, 48)
        assert [o.earliest_start for o in a] == [o.earliest_start for o in b]


class TestAdaptiveTrigger:
    def _latency(self, metrics, *values):
        histogram = metrics.histogram("latency.e2e_slices")
        for value in values:
            histogram.observe(value)

    def test_validation(self):
        with pytest.raises(ServiceError):
            AdaptiveTrigger(0.0)
        with pytest.raises(ServiceError):
            AdaptiveTrigger(8.0, count_threshold=0)
        with pytest.raises(ServiceError):
            AdaptiveTrigger(8.0, min_count=10, max_count=5)
        with pytest.raises(ServiceError):
            AdaptiveTrigger(8.0, tighten_factor=1.0)
        with pytest.raises(ServiceError):
            AdaptiveTrigger(8.0, relax_factor=0.9)
        with pytest.raises(ServiceError):
            AdaptiveTrigger(8.0, relax_margin=1.5)

    def test_fires_on_count_or_age(self):
        trigger = AdaptiveTrigger(8.0, count_threshold=10, max_age_slices=4.0)
        fire = TriggerContext(
            now=0.0,
            offers_since_last_run=10,
            oldest_unscheduled_age=0.0,
            unscheduled_energy_kwh=0.0,
        )
        wait = TriggerContext(
            now=0.0,
            offers_since_last_run=9,
            oldest_unscheduled_age=3.9,
            unscheduled_energy_kwh=1e9,  # imbalance is not part of the rule
        )
        assert trigger.should_fire(fire)
        assert not trigger.should_fire(wait)

    def test_tightens_when_p95_above_target(self):
        trigger = AdaptiveTrigger(10.0, count_threshold=100, max_age_slices=8.0)
        metrics = MetricsRegistry()
        self._latency(metrics, *[50.0] * 20)
        record = trigger.observe(metrics)
        assert record is not None and record["direction"] == "tighten"
        assert trigger.count_threshold == 50
        assert trigger.max_age_slices == 4.0
        assert record["count_threshold"] == {"old": 100, "new": 50}
        assert record["max_age_slices"] == {"old": 8.0, "new": 4.0}

    def test_stale_histogram_is_not_acted_on(self):
        trigger = AdaptiveTrigger(10.0, count_threshold=100, max_age_slices=8.0)
        metrics = MetricsRegistry()
        assert trigger.observe(metrics) is None  # no observations at all
        self._latency(metrics, 50.0)
        assert trigger.observe(metrics) is not None
        # No new observations since: the cumulative histogram is stale.
        assert trigger.observe(metrics) is None
        assert trigger.count_threshold == 50

    def test_in_band_p95_leaves_thresholds_alone(self):
        trigger = AdaptiveTrigger(10.0, count_threshold=100, max_age_slices=8.0)
        metrics = MetricsRegistry()
        self._latency(metrics, 8.0)  # between relax_margin*target and target
        assert trigger.observe(metrics) is None
        assert trigger.count_threshold == 100

    def test_relax_is_capped_at_the_rails(self):
        trigger = AdaptiveTrigger(
            10.0,
            count_threshold=100,
            max_age_slices=8.0,
            max_count=130,
            max_age_cap=10.0,
        )
        metrics = MetricsRegistry()
        self._latency(metrics, 1.0)
        record = trigger.observe(metrics)
        assert record["direction"] == "relax"
        assert trigger.count_threshold == 120
        assert trigger.max_age_slices == pytest.approx(9.6)
        self._latency(metrics, 1.0)
        assert trigger.observe(metrics) is not None
        assert trigger.count_threshold == 130
        assert trigger.max_age_slices == 10.0
        self._latency(metrics, 1.0)
        assert trigger.observe(metrics) is None  # pinned at the rails
        assert trigger.count_threshold == 130

    def test_tighten_is_floored_at_the_minimums(self):
        trigger = AdaptiveTrigger(
            2.0,
            count_threshold=20,
            max_age_slices=3.0,
            min_count=8,
            min_age_slices=1.0,
        )
        metrics = MetricsRegistry()
        for _ in range(4):
            self._latency(metrics, 50.0)
            if trigger.observe(metrics) is None:
                break
        assert trigger.count_threshold == 8
        assert trigger.max_age_slices == 1.0
        self._latency(metrics, 50.0)
        assert trigger.observe(metrics) is None  # pinned at the floors


class TestAdaptiveCooldown:
    def _waits(self, metrics, *values):
        histogram = metrics.histogram("tso.refresh_wait_slices")
        for value in values:
            histogram.observe(value)

    def test_validation(self):
        with pytest.raises(ServiceError):
            AdaptiveCooldown(0.0, trigger_refreshes=2, min_run_interval_slices=1.0)
        with pytest.raises(ServiceError):
            AdaptiveCooldown(4.0, trigger_refreshes=0, min_run_interval_slices=1.0)
        with pytest.raises(ServiceError):
            AdaptiveCooldown(4.0, trigger_refreshes=2, min_run_interval_slices=-1.0)

    def test_tighten_reduces_refreshes_and_snaps_small_intervals(self):
        cooldown = AdaptiveCooldown(
            4.0, trigger_refreshes=3, min_run_interval_slices=0.4
        )
        metrics = MetricsRegistry()
        self._waits(metrics, 20.0)
        record = cooldown.observe(metrics)
        assert record["direction"] == "tighten"
        assert cooldown.trigger_refreshes == 2
        # 0.4 * 0.5 < 0.25: snaps to "no cooldown" instead of asymptoting.
        assert cooldown.min_run_interval_slices == 0.0
        self._waits(metrics, 20.0)
        assert cooldown.observe(metrics) is not None
        assert cooldown.trigger_refreshes == 1
        self._waits(metrics, 20.0)
        assert cooldown.observe(metrics) is None  # fully tight already

    def test_relax_recovers_toward_configured_rails_only(self):
        cooldown = AdaptiveCooldown(
            10.0, trigger_refreshes=3, min_run_interval_slices=2.0
        )
        tight = MetricsRegistry()
        self._waits(tight, 50.0)
        assert cooldown.observe(tight)["direction"] == "tighten"
        assert (cooldown.trigger_refreshes, cooldown.min_run_interval_slices) == (2, 1.0)
        relaxed = MetricsRegistry()
        self._waits(relaxed, 1.0, 1.0)
        assert cooldown.observe(relaxed)["direction"] == "relax"
        assert cooldown.trigger_refreshes == 3  # back at the configured rail
        assert cooldown.min_run_interval_slices == pytest.approx(1.2)
        self._waits(relaxed, 1.0)
        record = cooldown.observe(relaxed)
        assert record["trigger_refreshes"] == {"old": 3, "new": 3}
        assert cooldown.min_run_interval_slices == pytest.approx(1.44)

    def test_stale_histogram_is_not_acted_on(self):
        cooldown = AdaptiveCooldown(
            4.0, trigger_refreshes=2, min_run_interval_slices=1.0
        )
        metrics = MetricsRegistry()
        assert cooldown.observe(metrics) is None
        self._waits(metrics, 20.0)
        assert cooldown.observe(metrics) is not None
        assert cooldown.observe(metrics) is None  # no new waits since
