"""API-stability gate: the public facade cannot drift silently.

Asserts the exported names (``__all__``) and callable signatures of
``repro.api`` and ``repro.runtime`` against the checked-in snapshot
``tests/api_snapshot.json``.  A PR that intentionally evolves the facade
regenerates the snapshot — making the change visible in review — with::

    REPRO_UPDATE_API_SNAPSHOT=1 PYTHONPATH=src \
        python -m pytest tests/test_api_stability.py

An unintentional change (renamed export, dropped parameter, new required
argument) fails here instead of breaking downstream callers.
"""

import importlib
import inspect
import json
import os
import pathlib

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "api_snapshot.json"
MODULES = ("repro.api", "repro.runtime")


def _signature_of(obj) -> str | None:
    """A deterministic signature string (None for non-callables)."""
    target = obj
    if inspect.isclass(obj):
        # The class's constructor surface is what callers depend on.
        target = obj.__init__
        if target is object.__init__:
            return "()"
    if not callable(obj):
        return None
    try:
        signature = str(inspect.signature(target))
    except (TypeError, ValueError):
        return None
    if inspect.isclass(obj):
        # Drop the bound 'self' for readability/stability.
        signature = signature.replace("(self, ", "(", 1).replace(
            "(self)", "()", 1
        )
    return signature


def build_snapshot() -> dict:
    """The current public surface of every gated module."""
    snapshot: dict[str, dict] = {}
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        exports = sorted(module.__all__)
        signatures = {}
        for name in exports:
            obj = getattr(module, name)
            signature = _signature_of(obj)
            if signature is not None:
                signatures[name] = signature
        snapshot[module_name] = {"all": exports, "signatures": signatures}
    return snapshot


def test_api_surface_matches_snapshot():
    current = build_snapshot()
    if os.environ.get("REPRO_UPDATE_API_SNAPSHOT"):
        SNAPSHOT_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
    assert SNAPSHOT_PATH.exists(), (
        "tests/api_snapshot.json is missing; regenerate it with "
        "REPRO_UPDATE_API_SNAPSHOT=1"
    )
    recorded = json.loads(SNAPSHOT_PATH.read_text())

    for module_name in MODULES:
        assert module_name in recorded, f"snapshot lacks {module_name}"
        got = current[module_name]
        want = recorded[module_name]
        missing = sorted(set(want["all"]) - set(got["all"]))
        added = sorted(set(got["all"]) - set(want["all"]))
        assert not missing, (
            f"{module_name}.__all__ lost exports {missing}; if intended, "
            "regenerate tests/api_snapshot.json (REPRO_UPDATE_API_SNAPSHOT=1)"
        )
        assert not added, (
            f"{module_name}.__all__ gained exports {added} not in the "
            "snapshot; regenerate tests/api_snapshot.json "
            "(REPRO_UPDATE_API_SNAPSHOT=1)"
        )
        for name, signature in want["signatures"].items():
            assert got["signatures"].get(name) == signature, (
                f"{module_name}.{name} signature changed:\n"
                f"  recorded: {signature}\n"
                f"  current:  {got['signatures'].get(name)}\n"
                "If intended, regenerate tests/api_snapshot.json "
                "(REPRO_UPDATE_API_SNAPSHOT=1)"
            )


def test_every_lazy_api_export_resolves():
    """PEP 562 exports in repro.api must all import and match __all__."""
    import repro.api as api

    for name in api.__all__:
        assert getattr(api, name) is not None
