"""Tests for the scheduling problem, cost model and all three solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TimeSeries, flex_offer
from repro.core.errors import SchedulingError
from repro.scheduling import (
    CandidateSolution,
    EvolutionaryScheduler,
    ExhaustiveScheduler,
    Market,
    RandomizedGreedyScheduler,
    SchedulingProblem,
    count_start_combinations,
)

T = 48


def flat_problem(offers, net=10.0, **kwargs):
    """A small problem over a flat net forecast."""
    return SchedulingProblem(
        TimeSeries(0, np.full(T, float(net))),
        tuple(offers),
        kwargs.pop("market", Market.flat(T)),
        **kwargs,
    )


def surplus_problem(offers, **kwargs):
    """Shortage everywhere except a deep RES surplus valley mid-horizon."""
    t = np.arange(T)
    net = 10.0 - 40.0 * np.exp(-0.5 * ((t - 24) / 4) ** 2)
    market = Market(
        np.full(T, 0.20),
        np.full(T, 0.05),
        max_buy=np.full(T, 1000.0),
        max_sell=np.full(T, 2.0),  # limited export: surplus hurts
    )
    return SchedulingProblem(TimeSeries(0, net), tuple(offers), market, **kwargs)


class TestMarket:
    def test_flat_constructor(self):
        market = Market.flat(10, buy_price=0.3, sell_price=0.1)
        assert market.horizon_length == 10
        assert market.buy_price[0] == 0.3

    def test_rejects_arbitrage(self):
        with pytest.raises(SchedulingError):
            Market(np.full(5, 0.1), np.full(5, 0.2))

    def test_rejects_misaligned_limits(self):
        with pytest.raises(SchedulingError):
            Market(np.full(5, 0.2), np.full(5, 0.1), max_buy=np.full(4, 1.0))

    def test_rejects_negative_limits(self):
        with pytest.raises(SchedulingError):
            Market(np.full(5, 0.2), np.full(5, 0.1), max_sell=np.full(5, -1.0))

    def test_day_night_prices(self):
        market = Market.day_night(96, 96)
        assert market.buy_price.min() < market.buy_price.max()


class TestProblemValidation:
    def test_offer_before_horizon_rejected(self):
        offer = flex_offer([(1, 2)], earliest_start=-1, latest_start=0,
                           creation_time=-1)
        with pytest.raises(SchedulingError):
            flat_problem([offer])

    def test_offer_past_horizon_rejected(self):
        offer = flex_offer([(1, 2)] * 4, earliest_start=T - 2, latest_start=T - 2)
        with pytest.raises(SchedulingError):
            flat_problem([offer])

    def test_market_must_cover_horizon(self):
        offer = flex_offer([(1, 2)], earliest_start=0, latest_start=4)
        with pytest.raises(SchedulingError):
            flat_problem([offer], market=Market.flat(T - 1))

    def test_negative_penalty_rejected(self):
        offer = flex_offer([(1, 2)], earliest_start=0, latest_start=4)
        with pytest.raises(SchedulingError):
            flat_problem([offer], shortage_penalty=np.array(-0.1))


class TestCostModel:
    def test_shortage_buys_when_cheaper(self):
        offer = flex_offer([(0, 0)], earliest_start=0, latest_start=0)
        problem = flat_problem([offer], net=10.0)  # buy 0.20 < penalty 0.5
        evaluation = problem.evaluate(problem.minimum_solution())
        assert evaluation.market_buy.sum() == pytest.approx(10.0 * T)
        assert evaluation.total_cost == pytest.approx(10.0 * T * 0.20)
        assert evaluation.unresolved_mismatch == pytest.approx(0.0)

    def test_surplus_sells_for_revenue(self):
        offer = flex_offer([(0, 0)], earliest_start=0, latest_start=0)
        problem = flat_problem([offer], net=-5.0)
        evaluation = problem.evaluate(problem.minimum_solution())
        assert evaluation.total_cost == pytest.approx(-5.0 * T * 0.05)
        assert evaluation.market_cost < 0

    def test_sell_limit_forces_penalty(self):
        offer = flex_offer([(0, 0)], earliest_start=0, latest_start=0)
        market = Market(
            np.full(T, 0.2), np.full(T, 0.05), max_sell=np.full(T, 1.0)
        )
        problem = flat_problem([offer], net=-5.0, market=market,
                               surplus_penalty=np.array(0.3))
        evaluation = problem.evaluate(problem.minimum_solution())
        expected = T * (-1.0 * 0.05 + 4.0 * 0.3)
        assert evaluation.total_cost == pytest.approx(expected)
        assert evaluation.unresolved_mismatch == pytest.approx(4.0 * T)

    def test_flexoffer_compensation_term(self):
        offer = flex_offer([(2, 2)], earliest_start=0, latest_start=0,
                           unit_price=0.1)
        problem = flat_problem([offer], net=0.0)
        evaluation = problem.evaluate(problem.minimum_solution())
        assert evaluation.flexoffer_cost == pytest.approx(0.2)

    def test_consumption_in_surplus_valley_is_cheap(self):
        """Consuming inside the surplus valley must beat consuming outside."""
        energy = [(3.0, 3.0)] * 2
        inside = flex_offer(energy, earliest_start=23, latest_start=23)
        outside = flex_offer(energy, earliest_start=0, latest_start=0)
        cost_in = surplus_problem([inside]).cost(
            surplus_problem([inside]).minimum_solution()
        )
        cost_out = surplus_problem([outside]).cost(
            surplus_problem([outside]).minimum_solution()
        )
        assert cost_in < cost_out

    def test_cost_matches_evaluate(self):
        rng = np.random.default_rng(0)
        offers = [
            flex_offer([(1, 2), (0, 1)], earliest_start=5, latest_start=20)
            for _ in range(5)
        ]
        problem = surplus_problem(offers)
        solution = problem.random_solution(rng)
        assert problem.cost(solution) == pytest.approx(
            problem.evaluate(solution).total_cost
        )

    def test_to_schedule_validates(self):
        offers = [flex_offer([(1, 2)], earliest_start=3, latest_start=9)]
        problem = flat_problem(offers)
        schedule = problem.to_schedule(problem.minimum_solution())
        assert len(schedule) == 1
        assert schedule.market_buy is not None


class TestGreedy:
    def test_beats_minimum_baseline_on_surplus(self):
        rng = np.random.default_rng(3)
        offers = [
            flex_offer(
                [(1.0, 2.5)] * 3,
                earliest_start=int(rng.integers(0, 20)),
                latest_start=int(rng.integers(20, 40)),
            )
            for _ in range(12)
        ]
        problem = surplus_problem(offers)
        result = RandomizedGreedyScheduler().schedule(
            problem, max_passes=5, rng=rng
        )
        assert result.cost <= problem.cost(problem.minimum_solution()) + 1e-9

    def test_respects_constraints(self):
        rng = np.random.default_rng(4)
        offers = [
            flex_offer([(0.5, 2.0), (0.5, 2.0)], earliest_start=5, latest_start=30)
            for _ in range(6)
        ]
        problem = surplus_problem(offers)
        result = RandomizedGreedyScheduler().schedule(problem, max_passes=3, rng=rng)
        problem.to_schedule(result.solution)  # raises if any constraint broken

    def test_trace_costs_decrease(self):
        rng = np.random.default_rng(5)
        offers = [
            flex_offer([(1, 2)] * 2, earliest_start=0, latest_start=40)
            for _ in range(8)
        ]
        problem = surplus_problem(offers)
        result = RandomizedGreedyScheduler().schedule(problem, max_passes=20, rng=rng)
        costs = [c for _, c in result.trace]
        assert costs == sorted(costs, reverse=True)

    def test_warm_start_never_worse_than_seed(self):
        rng = np.random.default_rng(6)
        offers = [
            flex_offer([(1.0, 2.0)] * 2, earliest_start=0, latest_start=40)
            for _ in range(8)
        ]
        problem = surplus_problem(offers)
        warm = problem.minimum_solution()
        warm_cost = problem.cost(warm)
        result = RandomizedGreedyScheduler().schedule(
            problem, max_passes=3, rng=rng, warm_start=warm
        )
        assert result.cost <= warm_cost + 1e-9
        # The warm candidate counts as one evaluation.
        assert result.evaluations == 3

    def test_warm_start_survives_zero_extra_passes(self):
        rng = np.random.default_rng(7)
        offers = [
            flex_offer([(1.0, 2.0)], earliest_start=0, latest_start=10)
            for _ in range(3)
        ]
        problem = flat_problem(offers)
        warm = problem.minimum_solution()
        result = RandomizedGreedyScheduler().schedule(
            problem, max_passes=1, rng=rng, warm_start=warm
        )
        assert result.evaluations == 1
        assert result.cost == pytest.approx(problem.cost(warm))


class TestEvolutionary:
    def test_improves_over_random_start(self):
        rng = np.random.default_rng(6)
        offers = [
            flex_offer([(1, 3)] * 2, earliest_start=0, latest_start=40)
            for _ in range(8)
        ]
        problem = surplus_problem(offers)
        result = EvolutionaryScheduler().schedule(
            problem, max_evaluations=2000, rng=rng
        )
        first_cost = result.trace[0][1]
        assert result.cost < first_cost

    def test_solution_is_feasible(self):
        rng = np.random.default_rng(7)
        offers = [
            flex_offer([(0.5, 1.5)] * 3, earliest_start=2, latest_start=30)
            for _ in range(5)
        ]
        problem = surplus_problem(offers)
        result = EvolutionaryScheduler().schedule(
            problem, max_evaluations=500, rng=rng
        )
        problem.to_schedule(result.solution)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            EvolutionaryScheduler(population_size=2)
        with pytest.raises(ValueError):
            EvolutionaryScheduler(mutation_rate=0.0)

    def test_deterministic_under_seed(self):
        offers = [
            flex_offer([(1, 2)] * 2, earliest_start=0, latest_start=20)
            for _ in range(4)
        ]
        problem = surplus_problem(offers)
        a = EvolutionaryScheduler().schedule(
            problem, max_evaluations=300, rng=np.random.default_rng(9)
        )
        b = EvolutionaryScheduler().schedule(
            problem, max_evaluations=300, rng=np.random.default_rng(9)
        )
        assert a.cost == b.cost


class TestExhaustive:
    def _fixed_energy_offers(self, n, rng):
        offers = []
        for _ in range(n):
            est = int(rng.integers(0, 30))
            offers.append(
                flex_offer(
                    [(2.0, 2.0)] * 2,
                    earliest_start=est,
                    latest_start=est + int(rng.integers(0, 7)),
                )
            )
        return offers

    def test_count_start_combinations(self):
        offers = [
            flex_offer([(1, 1)], earliest_start=0, latest_start=2),
            flex_offer([(1, 1)], earliest_start=0, latest_start=4),
        ]
        problem = flat_problem(offers)
        assert count_start_combinations(problem) == 3 * 5

    def test_finds_true_optimum(self):
        rng = np.random.default_rng(11)
        offers = []
        for _ in range(4):
            est = int(rng.integers(0, 25))
            offers.append(
                flex_offer([(2.0, 2.0)] * 2, earliest_start=est, latest_start=est + 6)
            )
        problem = surplus_problem(offers)
        optimum = ExhaustiveScheduler().schedule(problem)
        assert optimum.evaluations == count_start_combinations(problem)
        # no candidate found by the metaheuristics may beat the optimum
        greedy = RandomizedGreedyScheduler().schedule(
            problem, max_passes=30, rng=rng
        )
        ea = EvolutionaryScheduler().schedule(
            problem, max_evaluations=3000, rng=rng
        )
        assert greedy.cost >= optimum.cost - 1e-9
        assert ea.cost >= optimum.cost - 1e-9

    def test_metaheuristics_reach_optimum_on_tiny_instance(self):
        rng = np.random.default_rng(12)
        offers = self._fixed_energy_offers(3, rng)
        problem = surplus_problem(offers)
        optimum = ExhaustiveScheduler().schedule(problem)
        greedy = RandomizedGreedyScheduler().schedule(
            problem, max_passes=50, rng=np.random.default_rng(1)
        )
        assert greedy.cost == pytest.approx(optimum.cost, abs=1e-6)

    def test_rejects_energy_flexibility(self):
        offers = [flex_offer([(1, 2)], earliest_start=0, latest_start=1)]
        problem = flat_problem(offers)
        with pytest.raises(SchedulingError):
            ExhaustiveScheduler().schedule(problem)

    def test_rejects_oversized_space(self):
        offers = [
            flex_offer([(1.0, 1.0)], earliest_start=0, latest_start=40)
            for _ in range(8)
        ]
        problem = flat_problem(offers)
        with pytest.raises(SchedulingError):
            ExhaustiveScheduler(limit=1000).schedule(problem)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_greedy_solutions_always_feasible(n, seed):
    """Greedy output always satisfies every flex-offer constraint."""
    rng = np.random.default_rng(seed)
    offers = []
    for _ in range(n):
        est = int(rng.integers(0, 30))
        tf = int(rng.integers(0, 10))
        d = int(rng.integers(1, 5))
        lo = float(rng.uniform(-2, 2))
        hi = lo + float(rng.uniform(0, 2))
        offers.append(
            flex_offer([(lo, hi)] * d, earliest_start=est, latest_start=min(est + tf, T - d))
        )
    problem = surplus_problem(offers)
    result = RandomizedGreedyScheduler().schedule(problem, max_passes=2, rng=rng)
    problem.to_schedule(result.solution)  # validates everything


class TestHybridEA:
    def test_greedy_seed_improves_start(self):
        rng = np.random.default_rng(21)
        offers = [
            flex_offer([(1, 2)] * 3, earliest_start=0, latest_start=30)
            for _ in range(20)
        ]
        problem = surplus_problem(offers)
        pure = EvolutionaryScheduler().schedule(
            problem, max_evaluations=200, rng=np.random.default_rng(1)
        )
        hybrid = EvolutionaryScheduler(seed_with_greedy_pass=True).schedule(
            problem, max_evaluations=200, rng=np.random.default_rng(1)
        )
        assert hybrid.cost <= pure.cost
        # the greedy seed is already close: the first recorded cost is lower
        assert hybrid.trace[0][1] >= hybrid.cost


@settings(max_examples=60, deadline=None)
@given(
    residual=st.lists(st.floats(-20, 20, allow_nan=False), min_size=1, max_size=12),
    buy=st.floats(0.05, 0.5),
    sell_frac=st.floats(0.0, 1.0),
    shortage_penalty=st.floats(0.0, 1.0),
    surplus_penalty=st.floats(0.0, 1.0),
)
def test_market_settlement_is_per_slice_optimal(
    residual, buy, sell_frac, shortage_penalty, surplus_penalty
):
    """The analytic settlement never loses to all-or-nothing alternatives:
    per slice, its cost is <= both 'trade everything' and 'trade nothing'."""
    T_ = len(residual)
    offer = flex_offer([(0, 0)], earliest_start=0, latest_start=0)
    market = Market(np.full(T_, buy), np.full(T_, buy * sell_frac))
    problem = SchedulingProblem(
        TimeSeries(0, residual),
        (offer,),
        market,
        shortage_penalty=np.array(shortage_penalty),
        surplus_penalty=np.array(surplus_penalty),
    )
    r = np.asarray(residual, dtype=float)
    optimal = problem.slice_costs(r)
    shortage = np.maximum(r, 0.0)
    surplus = np.maximum(-r, 0.0)
    trade_all = (
        shortage * market.buy_price - surplus * market.sell_price
    )
    trade_nothing = (
        shortage * problem.shortage_penalty + surplus * problem.surplus_penalty
    )
    assert np.all(optimal <= trade_all + 1e-9)
    assert np.all(optimal <= trade_nothing + 1e-9)


class TestCostTracker:
    def test_requires_some_budget(self):
        from repro.scheduling import CostTracker

        with pytest.raises(ValueError):
            CostTracker(None, None)

    def test_records_improvements_only_in_trace(self):
        from repro.scheduling import CostTracker

        offer = flex_offer([(1, 1)], earliest_start=0, latest_start=0)
        problem = flat_problem([offer])
        solution = problem.minimum_solution()
        tracker = CostTracker(None, 10)
        tracker.record(5.0, solution)
        tracker.record(7.0, solution)  # worse: not traced
        tracker.record(3.0, solution)
        assert [c for _, c in tracker.trace] == [5.0, 3.0]
        assert tracker.best_cost == 3.0
        assert tracker.evaluations == 3

    def test_result_without_evaluation_rejected(self):
        from repro.scheduling import CostTracker

        with pytest.raises(ValueError):
            CostTracker(None, 5).result()

    def test_cost_at_checkpoints(self):
        from repro.scheduling import SchedulingResult

        result = SchedulingResult(
            solution=None, cost=1.0, evaluations=3, elapsed_seconds=2.0,
            trace=[(0.5, 10.0), (1.0, 5.0), (1.5, 1.0)],
        )
        assert result.cost_at(0.1) == float("inf")
        assert result.cost_at(0.75) == 10.0
        assert result.cost_at(2.0) == 1.0
