"""Property and regression tests for the vectorized scheduling cost engine.

The correctness gate of the engine rewrite: the closed-form
:class:`~repro.scheduling.engine.CostEngine` and the batched placement
kernel must be numerically equivalent to the settlement-derived oracle
(``settled_slice_costs`` / ``evaluate``) and bit-identical to the scalar
:mod:`~repro.scheduling.reference` kernel — across random problems mixing
volume limits, penalty shapes, and production/consumption offers.
"""

import numpy as np
import pytest

from repro.core import TimeSeries, flex_offer
from repro.runtime import BrpRuntimeService, LoadGenerator, RuntimeConfig
from repro.scheduling import (
    CandidateSolution,
    DeltaRequest,
    DeltaScheduler,
    IncrementalCostState,
    Market,
    RandomizedGreedyScheduler,
    SchedulingProblem,
)
from repro.scheduling.reference import (
    reference_one_pass,
    reference_optimal_energies,
)

N_RANDOM_PROBLEMS = 200


def random_problem(rng: np.random.Generator) -> SchedulingProblem:
    """A random instance mixing every cost-model feature the engine folds.

    Volume limits present or absent per side, scalar or per-slice
    penalties (including zero), negative sell prices, and offers that are
    production-only, consumption-only, or sign-crossing.
    """
    horizon = int(rng.integers(8, 48))
    net = rng.uniform(-25.0, 25.0, horizon)

    buy = rng.uniform(0.05, 0.6, horizon)
    # sell <= buy (no-arbitrage); occasionally negative (paying to dump).
    sell = buy - rng.uniform(0.0, 0.7, horizon)
    max_buy = rng.uniform(0.0, 30.0, horizon) if rng.random() < 0.5 else None
    max_sell = rng.uniform(0.0, 10.0, horizon) if rng.random() < 0.5 else None
    market = Market(buy, sell, max_buy=max_buy, max_sell=max_sell)

    def penalty(scale: float):
        if rng.random() < 0.5:
            return np.array(rng.uniform(0.0, scale))
        return rng.uniform(0.0, scale, horizon)

    offers = []
    for _ in range(int(rng.integers(1, 7))):
        duration = int(rng.integers(1, min(5, horizon) + 1))
        earliest = int(rng.integers(0, horizon - duration + 1))
        latest = int(rng.integers(earliest, horizon - duration + 1))
        kind = rng.random()
        if kind < 0.4:  # consumption
            lo = rng.uniform(0.0, 2.0, duration)
        elif kind < 0.8:  # production
            lo = rng.uniform(-4.0, -1.0, duration)
        else:  # sign-crossing flexibility
            lo = rng.uniform(-2.0, 0.0, duration)
        hi = lo + rng.uniform(0.0, 3.0, duration)
        offers.append(
            flex_offer(
                list(zip(lo, hi)),
                earliest_start=earliest,
                latest_start=latest,
                unit_price=float(rng.choice([0.0, rng.uniform(0.0, 0.1)])),
            )
        )
    return SchedulingProblem(
        TimeSeries(0, net),
        tuple(offers),
        market,
        shortage_penalty=penalty(1.0),
        surplus_penalty=penalty(0.6),
    )


class TestEngineEquivalence:
    def test_engine_matches_oracle_on_random_problems(self):
        """Engine ≡ settled oracle ≡ evaluate() on 200 random problems."""
        rng = np.random.default_rng(2024)
        for _ in range(N_RANDOM_PROBLEMS):
            problem = random_problem(rng)
            solution = problem.random_solution(rng)
            residual = problem.net_forecast.values + problem.flex_series(solution)

            engine_costs = problem.engine.slice_costs(residual)
            oracle_costs = problem.settled_slice_costs(residual)
            assert np.allclose(engine_costs, oracle_costs, atol=1e-9)

            evaluation = problem.evaluate(solution)
            assert problem.cost(solution) == pytest.approx(
                evaluation.total_cost, abs=1e-9
            )

    def test_engine_matches_oracle_on_partial_windows(self):
        rng = np.random.default_rng(7)
        problem = random_problem(rng)
        horizon = problem.horizon_length
        for _ in range(20):
            lo = int(rng.integers(0, horizon))
            hi = int(rng.integers(lo + 1, horizon + 1))
            window = rng.uniform(-20.0, 20.0, hi - lo)
            assert np.allclose(
                problem.engine.slice_costs(window, lo),
                problem.settled_slice_costs(window, lo),
                atol=1e-9,
            )

    def test_engine_is_cached_per_problem(self):
        problem = random_problem(np.random.default_rng(1))
        assert problem.engine is problem.engine
        assert problem.offer_constants is problem.offer_constants
        assert problem.packed_offers is problem.packed_offers


class TestBatchedKernel:
    def test_matches_reference_placement_bit_for_bit(self):
        """Batched kernel ≡ scalar per-start scan, including tie-breaks."""
        rng = np.random.default_rng(99)
        for _ in range(60):
            problem = random_problem(rng)
            residual = problem.net_forecast.values + rng.uniform(
                -10.0, 10.0, problem.horizon_length
            )
            for j, offer in enumerate(problem.offers):
                consts = problem.offer_constants[j]
                lo = np.asarray(offer.profile.min_energies())
                hi = np.asarray(offer.profile.max_energies())
                best_cost = np.inf
                best_start = offer.earliest_start
                best_energy = lo
                for start in offer.start_times():
                    i = start - problem.horizon_start
                    window = residual[i : i + offer.duration]
                    energy, delta = reference_optimal_energies(
                        problem, offer, window, i, lo, hi
                    )
                    if delta < best_cost:
                        best_cost = delta
                        best_start = start
                        best_energy = energy
                start_index, energy, delta = problem.engine.best_placement(
                    consts, residual
                )
                assert consts.earliest_start + start_index == best_start
                assert np.array_equal(energy, best_energy)
                assert delta == pytest.approx(best_cost, abs=1e-9)

    def test_greedy_pass_identical_to_reference(self):
        rng_seed = 5
        for trial in range(10):
            problem = random_problem(np.random.default_rng(trial))
            ref = reference_one_pass(problem, np.random.default_rng(rng_seed))
            new, pass_cost = RandomizedGreedyScheduler()._one_pass(
                problem, np.random.default_rng(rng_seed)
            )
            assert np.array_equal(ref.starts, new.starts)
            for a, b in zip(ref.energies, new.energies):
                assert np.array_equal(a, b)
            assert pass_cost == pytest.approx(problem.cost(new), abs=1e-9)


class TestIncrementalCostState:
    def test_replace_tracks_full_recompute(self):
        rng = np.random.default_rng(42)
        problem = random_problem(rng)
        state = IncrementalCostState.for_problem(problem)
        horizon = problem.horizon_length
        for _ in range(50):
            d = int(rng.integers(1, 4))
            old_i = int(rng.integers(0, horizon - d + 1))
            new_i = int(rng.integers(0, horizon - d + 1))
            energies = rng.uniform(-3.0, 3.0, d)
            state.replace(old_i, np.zeros(d), new_i, energies)
            assert state.total == pytest.approx(
                problem.engine.total_cost(state.residual), abs=1e-9
            )
        state.resync()
        assert state.total == pytest.approx(
            problem.engine.total_cost(state.residual), abs=1e-9
        )


class TestWarmStartedReplanning:
    def _problem_and_warm(self):
        rng = np.random.default_rng(11)
        offers = [
            flex_offer(
                [(0.5, 2.0)] * int(rng.integers(1, 4)),
                earliest_start=int(rng.integers(0, 20)),
                latest_start=int(rng.integers(20, 40)),
            )
            for _ in range(12)
        ]
        horizon = 48
        problem = SchedulingProblem(
            TimeSeries(0, rng.uniform(-10, 10, horizon)),
            tuple(offers),
            Market.flat(horizon),
        )
        return problem, problem.minimum_solution()

    def test_scheduler_warm_start_deterministic(self):
        """Same warm start + rng ⇒ identical schedules under the new kernel."""
        problem, warm = self._problem_and_warm()
        runs = [
            RandomizedGreedyScheduler().schedule(
                problem,
                max_passes=3,
                rng=np.random.default_rng(3),
                warm_start=warm.copy(),
            )
            for _ in range(2)
        ]
        assert runs[0].cost == runs[1].cost
        assert np.array_equal(runs[0].solution.starts, runs[1].solution.starts)
        for a, b in zip(runs[0].solution.energies, runs[1].solution.energies):
            assert np.array_equal(a, b)

    def test_runtime_replanning_identical_across_runs(self):
        """Two identical warm-started service runs commit identical plans."""

        def run():
            config = RuntimeConfig(batch_size=16, scheduler_passes=2, seed=9)
            service = BrpRuntimeService(config)
            generator = LoadGenerator(rate_per_hour=60.0, seed=9)
            service.run_stream(generator.stream(0.0, 48.0), 48.0)
            schedule = service.last_schedule
            assert schedule is not None
            # offer_ids are globally auto-assigned and differ between runs;
            # the committed placements are what must be identical.
            return [(s.start, tuple(s.energies)) for s in schedule]

        first, second = run(), run()
        assert first == second


class TestPackedOffers:
    def test_flex_series_matches_loop(self):
        rng = np.random.default_rng(13)
        for _ in range(20):
            problem = random_problem(rng)
            solution = problem.random_solution(rng)
            packed = problem.packed_offers.pack(solution.energies)
            assert np.allclose(
                problem.packed_offers.flex_series(solution.starts, packed),
                problem.flex_series(solution),
                atol=1e-12,
            )
            assert problem.packed_offers.flex_cost(packed) == pytest.approx(
                problem.flexoffer_cost(solution), abs=1e-9
            )

    def test_split_roundtrips(self):
        problem = random_problem(np.random.default_rng(3))
        solution = problem.random_solution(np.random.default_rng(4))
        packed = problem.packed_offers.pack(solution.energies)
        for original, piece in zip(
            solution.energies, problem.packed_offers.split(packed)
        ):
            assert np.array_equal(original, piece)

    def test_random_genomes_respect_bounds(self):
        problem = random_problem(np.random.default_rng(8))
        packing = problem.packed_offers
        rng = np.random.default_rng(5)
        starts = packing.random_starts(rng)
        packed = packing.random_packed(rng)
        assert np.all(starts >= packing.earliest)
        assert np.all(starts <= packing.latest)
        assert np.all(packed >= packing.lo - 1e-12)
        assert np.all(packed <= packing.hi + 1e-12)

    def test_slice_indices_subset(self):
        problem = random_problem(np.random.default_rng(21))
        packing = problem.packed_offers
        members = np.arange(packing.count)[::2]
        expected = np.concatenate(
            [
                np.arange(packing.offsets[j], packing.offsets[j + 1])
                for j in members
            ]
        )
        assert np.array_equal(packing.slice_indices(members), expected)
        assert packing.slice_indices(np.zeros(0, dtype=np.int64)).size == 0


class _DeltaOracle:
    """From-scratch replay of the delta scheduler's arithmetic contract.

    Independent bookkeeping of the retained plan across runs; every run
    rebuilds the incremental state canonically (zero seed + retained adds
    in index order, one vector add onto the forecast, dirty placements in
    index order, re-priced final cost).  The scheduler must reproduce this
    bit for bit — including the full-pass fallbacks, which are just the
    degenerate empty-retained case.
    """

    def __init__(self, *, full_fraction=0.25, full_on_window_shift=False):
        self.full_fraction = full_fraction
        self.full_on_window_shift = full_on_window_shift
        self.plan: dict = {}
        self.window = None

    def run(self, problem, keys, dirty):
        consts = problem.offer_constants
        n = problem.offer_count
        h0 = problem.horizon_start
        mode = "delta"
        if not self.plan:
            mode = "full"
        elif (
            self.full_on_window_shift
            and self.window is not None
            and h0 != self.window
        ):
            mode = "full"
        retained: dict = {}
        if mode == "delta":
            for j, key in enumerate(keys):
                prior = self.plan.get(key)
                if key in dirty or prior is None:
                    continue
                start, energies = prior
                c = consts[j]
                if (
                    len(energies) == c.duration
                    and c.earliest_start <= start <= c.latest_start
                    and np.all(energies >= c.lo)
                    and np.all(energies <= c.hi)
                ):
                    retained[j] = prior
            if n and (n - len(retained)) / n > self.full_fraction:
                mode = "full"
                retained = {}
        seed = np.zeros(problem.horizon_length)
        for j in sorted(retained):
            start, energies = retained[j]
            seed[start - h0 : start - h0 + len(energies)] += energies
        state = IncrementalCostState(
            problem.engine, problem.net_forecast.values + seed
        )
        starts = np.zeros(n, dtype=np.int64)
        energies_out = [None] * n
        for j in range(n):
            if j in retained:
                starts[j], energies_out[j] = retained[j]
        for j in range(n):
            if j in retained:
                continue
            c = consts[j]
            index, energy, cost_delta = state.best_placement(c)
            starts[j] = c.earliest_start + index
            energies_out[j] = energy
            state.place(c.earliest_index + index, energy, cost_delta)
        compensation = 0.0
        for j in range(n):
            compensation += consts[j].flex_cost(energies_out[j])
        cost = problem.engine.total_cost(state.residual) + compensation
        self.plan = {
            keys[j]: (int(starts[j]), energies_out[j]) for j in range(n)
        }
        self.window = h0
        return starts, energies_out, cost, mode


def _random_pool_offer(rng, horizon, h0=0):
    duration = int(rng.integers(1, min(5, horizon) + 1))
    earliest = h0 + int(rng.integers(0, horizon - duration + 1))
    latest = h0 + int(rng.integers(earliest - h0, horizon - duration + 1))
    kind = rng.random()
    if kind < 0.4:
        lo = rng.uniform(0.0, 2.0, duration)
    elif kind < 0.8:
        lo = rng.uniform(-4.0, -1.0, duration)
    else:
        lo = rng.uniform(-2.0, 0.0, duration)
    hi = lo + rng.uniform(0.0, 3.0, duration)
    return flex_offer(
        list(zip(lo, hi)),
        earliest_start=earliest,
        latest_start=latest,
        unit_price=float(rng.choice([0.0, rng.uniform(0.0, 0.1)])),
    )


class TestDeltaScheduler:
    """Bit-parity of dirty-set re-planning against the from-scratch oracle."""

    def _pool_problem(self, pool, net_series, market, rng):
        keys = tuple(sorted(pool))
        problem = SchedulingProblem(
            net_series,
            tuple(pool[key] for key in keys),
            market,
            shortage_penalty=np.array(0.8),
            surplus_penalty=np.array(0.4),
        )
        return keys, problem

    def test_oracle_parity_random_mixed_updates(self):
        """200 random pools x 4 rounds of mutate/delete/add updates.

        Every committed start, energy vector and cost must equal the
        oracle's bit for bit — and when dirt pushes the scheduler over
        ``full_fraction`` mid-history, the fallback full pass must equal a
        forced full re-plan by a fresh scheduler on the same problem.
        """
        rng = np.random.default_rng(42)
        delta_rounds = 0
        fallback_rounds = 0
        for _ in range(N_RANDOM_PROBLEMS):
            horizon = int(rng.integers(16, 40))
            net_series = TimeSeries(0, rng.uniform(-20.0, 20.0, horizon))
            buy = rng.uniform(0.05, 0.6, horizon)
            market = Market(buy, buy - rng.uniform(0.0, 0.5, horizon))
            fresh = iter(range(10_000))
            pool = {
                f"g{next(fresh):04d}": _random_pool_offer(rng, horizon)
                for _ in range(int(rng.integers(3, 9)))
            }
            scheduler = DeltaScheduler()
            oracle = _DeltaOracle()
            for round_no in range(4):
                dirty = set()
                if round_no:
                    for key in list(pool):
                        roll = rng.random()
                        if roll < 0.15 and len(pool) > 1:
                            del pool[key]
                        elif roll < 0.40:
                            pool[key] = _random_pool_offer(rng, horizon)
                            dirty.add(key)
                    for _ in range(int(rng.integers(0, 3))):
                        key = f"g{next(fresh):04d}"
                        pool[key] = _random_pool_offer(rng, horizon)
                        dirty.add(key)
                keys, problem = self._pool_problem(
                    pool, net_series, market, rng
                )
                result = scheduler.schedule(
                    problem,
                    delta=DeltaRequest(
                        keys=keys,
                        dirty=frozenset(dirty),
                        window_start=problem.horizon_start,
                    ),
                )
                starts, energies, cost, mode = oracle.run(
                    problem, keys, dirty
                )
                assert scheduler.last_stats["mode"] == mode
                assert np.array_equal(result.solution.starts, starts)
                for got, want in zip(result.solution.energies, energies):
                    assert np.array_equal(got, want)
                assert result.cost == cost
                if mode == "delta":
                    delta_rounds += 1
                elif round_no:
                    fallback_rounds += 1
                    forced = DeltaScheduler().schedule(problem)
                    assert np.array_equal(
                        forced.solution.starts, result.solution.starts
                    )
                    for got, want in zip(
                        forced.solution.energies, result.solution.energies
                    ):
                        assert np.array_equal(got, want)
                    assert forced.cost == result.cost
        # The history generator must actually exercise both regimes.
        assert delta_rounds > 100
        assert fallback_rounds > 20

    def test_window_shift_forces_full_pass_when_enabled(self):
        rng = np.random.default_rng(7)
        pool = {
            f"g{j}": _random_pool_offer(rng, 16, h0=6) for j in range(6)
        }
        market = Market.flat(24)

        def problem_at(h0):
            keys = tuple(sorted(pool))
            return keys, SchedulingProblem(
                TimeSeries(h0, rng.uniform(-5.0, 5.0, 24)),
                tuple(pool[key] for key in keys),
                market,
            )

        for shift_full, expected in ((True, "full"), (False, "delta")):
            scheduler = DeltaScheduler(full_on_window_shift=shift_full)
            oracle = _DeltaOracle(full_on_window_shift=shift_full)
            for h0 in (0, 4):
                keys, problem = problem_at(h0)
                result = scheduler.schedule(
                    problem,
                    delta=DeltaRequest(
                        keys=keys, dirty=frozenset(), window_start=h0
                    ),
                )
                starts, energies, cost, mode = oracle.run(
                    problem, keys, set()
                )
                assert scheduler.last_stats["mode"] == mode
                assert np.array_equal(result.solution.starts, starts)
                assert result.cost == cost
            assert scheduler.last_stats["mode"] == expected

    def test_undirtied_shape_change_is_evicted(self):
        """A clean key whose offer changed shape is re-placed, not reused.

        The dirty set is advisory; the retained-placement feasibility check
        (duration, start window, energy bounds) is the backstop.
        """
        horizon = 24
        net_series = TimeSeries(0, np.full(horizon, 3.0))
        market = Market.flat(horizon)
        pool = {
            "a": flex_offer([(1.0, 2.0)] * 2, earliest_start=2, latest_start=10),
            "b": flex_offer([(0.5, 1.5)] * 3, earliest_start=0, latest_start=8),
            "c": flex_offer([(1.0, 1.0)], earliest_start=5, latest_start=20),
            "d": flex_offer([(0.2, 0.9)] * 2, earliest_start=1, latest_start=12),
            "e": flex_offer([(0.1, 0.4)] * 4, earliest_start=3, latest_start=15),
        }
        scheduler = DeltaScheduler(full_fraction=1.0)
        oracle = _DeltaOracle(full_fraction=1.0)

        def run(dirty):
            keys = tuple(sorted(pool))
            problem = SchedulingProblem(
                net_series, tuple(pool[k] for k in keys), market
            )
            result = scheduler.schedule(
                problem,
                delta=DeltaRequest(
                    keys=keys, dirty=frozenset(dirty), window_start=0
                ),
            )
            starts, energies, cost, mode = oracle.run(problem, keys, dirty)
            assert np.array_equal(result.solution.starts, starts)
            assert result.cost == cost
            return result

        run(set())
        # Duration change on "a", window change on "c", bounds change on
        # "d" — none marked dirty; all three must still be re-placed.
        pool["a"] = flex_offer(
            [(1.0, 2.0)] * 3, earliest_start=2, latest_start=10
        )
        pool["c"] = flex_offer([(1.0, 1.0)], earliest_start=15, latest_start=20)
        pool["d"] = flex_offer(
            [(2.5, 3.0)] * 2, earliest_start=1, latest_start=12
        )
        run(set())
        assert scheduler.last_stats["mode"] == "delta"
        assert scheduler.last_stats["replaced"] == 3
        assert scheduler.last_stats["reused"] == 2

    def test_validation_and_reset(self):
        with pytest.raises(ValueError):
            DeltaScheduler(full_fraction=0.0)
        with pytest.raises(ValueError):
            DeltaScheduler(full_fraction=1.5)
        problem = random_problem(np.random.default_rng(3))
        scheduler = DeltaScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(
                problem,
                delta=DeltaRequest(
                    keys=("k",) * (problem.offer_count + 1),
                    dirty=frozenset(),
                    window_start=0,
                ),
            )
        keys = tuple(f"k{j}" for j in range(problem.offer_count))
        request = DeltaRequest(
            keys=keys, dirty=frozenset(), window_start=problem.horizon_start
        )
        scheduler.schedule(problem, delta=request)
        assert scheduler.last_stats["mode"] == "full"
        scheduler.schedule(problem, delta=request)
        assert scheduler.last_stats["mode"] == "delta"
        assert scheduler.last_stats["reused"] == problem.offer_count
        scheduler.reset()
        scheduler.schedule(problem, delta=request)
        assert scheduler.last_stats["mode"] == "full"
        # Without a request every call is a full pass, even with a plan.
        scheduler.schedule(problem)
        assert scheduler.last_stats["mode"] == "full"
