"""Disaggregation round-trip: random population → aggregate → schedule → members.

The paper's *disaggregation requirement*: any schedule of an aggregated
flex-offer must map back to valid schedules of every member.  This test
drives the full chain on a random offer population — aggregation pipeline,
greedy scheduler over the aggregates, disaggregation — and checks every
member assignment against its *original* offer: start window, per-slice
energy bounds, total-energy bounds, and exact energy conservation per
aggregate.
"""

import numpy as np
import pytest

from repro.aggregation import AggregationParameters, AggregationPipeline
from repro.aggregation.aggregator import disaggregate
from repro.core.timeseries import TimeSeries
from repro.datagen import FlexOfferDatasetSpec, generate_flexoffer_dataset
from repro.scheduling import Market, RandomizedGreedyScheduler, SchedulingProblem

N_OFFERS = 300
SEED = 1234


@pytest.fixture(scope="module")
def roundtrip():
    """Run the chain once; individual tests assert different invariants."""
    offers = generate_flexoffer_dataset(
        FlexOfferDatasetSpec(n_offers=N_OFFERS, n_days=2, seed=SEED)
    )
    original = {o.offer_id: o for o in offers}

    pipeline = AggregationPipeline(
        AggregationParameters(
            start_after_tolerance=8, time_flexibility_tolerance=8, name="rt"
        )
    )
    pipeline.submit_inserts(offers)
    pipeline.run()
    aggregates = pipeline.aggregates

    horizon_start = 0
    horizon_end = max(a.latest_start + a.duration for a in aggregates) + 1
    horizon = horizon_end - horizon_start
    rng = np.random.default_rng(SEED)
    problem = SchedulingProblem(
        net_forecast=TimeSeries(
            horizon_start, rng.normal(0.0, 5.0, size=horizon)
        ),
        offers=tuple(aggregates),
        market=Market.flat(horizon),
    )
    result = RandomizedGreedyScheduler().schedule(
        problem, max_passes=2, rng=rng
    )
    schedule = problem.to_schedule(result.solution)

    members = [m for assignment in schedule for m in disaggregate(assignment)]
    return original, aggregates, schedule, members


class TestDisaggregationRoundTrip:
    def test_every_offer_comes_back_exactly_once(self, roundtrip):
        original, _, _, members = roundtrip
        assert sorted(m.offer.offer_id for m in members) == sorted(original)

    def test_member_starts_respect_original_windows(self, roundtrip):
        original, _, _, members = roundtrip
        for member in members:
            offer = original[member.offer.offer_id]
            assert offer.earliest_start <= member.start <= offer.latest_start

    def test_member_energies_respect_original_slice_bounds(self, roundtrip):
        original, _, _, members = roundtrip
        for member in members:
            offer = original[member.offer.offer_id]
            assert len(member.energies) == offer.duration
            for energy, constraint in zip(member.energies, offer.profile):
                assert constraint.contains(energy)

    def test_member_total_energy_within_original_bounds(self, roundtrip):
        original, _, _, members = roundtrip
        for member in members:
            offer = original[member.offer.offer_id]
            total = member.total_energy
            assert (
                offer.total_min_energy - 1e-6
                <= total
                <= offer.total_max_energy + 1e-6
            )

    def test_aggregate_energy_conserved_per_slice(self, roundtrip):
        _, _, schedule, _ = roundtrip
        for assignment in schedule:
            members = disaggregate(assignment)
            horizon_start = min(m.start for m in members)
            horizon_end = max(m.end for m in members)
            total = np.zeros(horizon_end - horizon_start)
            for m in members:
                total[m.start - horizon_start : m.end - horizon_start] += (
                    np.asarray(m.energies)
                )
            scheduled = np.zeros(horizon_end - horizon_start)
            scheduled[
                assignment.start - horizon_start : assignment.end - horizon_start
            ] += np.asarray(assignment.energies)
            np.testing.assert_allclose(total, scheduled, atol=1e-6)

    def test_aggregate_shift_propagates_to_members(self, roundtrip):
        original, _, schedule, _ = roundtrip
        for assignment in schedule:
            delta = assignment.start - assignment.offer.earliest_start
            for member in disaggregate(assignment):
                offer = original[member.offer.offer_id]
                assert member.start - offer.earliest_start == delta
