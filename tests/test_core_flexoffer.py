"""Unit tests for flex-offers, profiles and energy constraints."""

import pytest

from repro.core import (
    EnergyConstraint,
    FlexOffer,
    InvalidFlexOfferError,
    Profile,
    flex_offer,
)


class TestEnergyConstraint:
    def test_flexibility_width(self):
        c = EnergyConstraint(2.0, 5.0)
        assert c.energy_flexibility == 3.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(InvalidFlexOfferError):
            EnergyConstraint(5.0, 2.0)

    def test_fixed_amount_allowed(self):
        c = EnergyConstraint(3.0, 3.0)
        assert c.energy_flexibility == 0.0

    def test_negative_production_bounds(self):
        c = EnergyConstraint(-5.0, -2.0)
        assert c.energy_flexibility == 3.0

    def test_contains_with_tolerance(self):
        c = EnergyConstraint(1.0, 2.0)
        assert c.contains(1.0)
        assert c.contains(2.0)
        assert c.contains(2.0 + 1e-12)
        assert not c.contains(2.1)

    def test_clamp(self):
        c = EnergyConstraint(1.0, 2.0)
        assert c.clamp(0.0) == 1.0
        assert c.clamp(3.0) == 2.0
        assert c.clamp(1.5) == 1.5

    def test_addition_sums_bounds(self):
        s = EnergyConstraint(1, 2) + EnergyConstraint(3, 5)
        assert (s.min_energy, s.max_energy) == (4, 7)

    def test_scaled(self):
        c = EnergyConstraint(1, 2).scaled(2.5)
        assert (c.min_energy, c.max_energy) == (2.5, 5.0)

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(InvalidFlexOfferError):
            EnergyConstraint(1, 2).scaled(-1)


class TestProfile:
    def test_from_bounds(self):
        p = Profile.from_bounds([(1, 2), (3, 4)])
        assert p.duration == 2
        assert p.total_min_energy == 4
        assert p.total_max_energy == 6

    def test_constant(self):
        p = Profile.constant(3, 0.5, 1.0)
        assert p.duration == 3
        assert p.total_energy_flexibility == pytest.approx(1.5)

    def test_empty_profile_rejected(self):
        with pytest.raises(InvalidFlexOfferError):
            Profile([])

    def test_non_constraint_elements_rejected(self):
        with pytest.raises(InvalidFlexOfferError):
            Profile([(1, 2)])  # raw tuple, not EnergyConstraint

    def test_min_max_energy_tuples(self):
        p = Profile.from_bounds([(1, 2), (3, 4)])
        assert p.min_energies() == (1, 3)
        assert p.max_energies() == (2, 4)

    def test_constant_rejects_zero_slices(self):
        with pytest.raises(InvalidFlexOfferError):
            Profile.constant(0, 1, 2)


class TestFlexOffer:
    def test_time_flexibility(self):
        fo = flex_offer([(1, 2)], earliest_start=10, latest_start=30)
        assert fo.time_flexibility == 20

    def test_zero_time_flexibility_allowed(self):
        fo = flex_offer([(1, 2)], earliest_start=10, latest_start=10)
        assert fo.time_flexibility == 0

    def test_rejects_inverted_start_window(self):
        with pytest.raises(InvalidFlexOfferError):
            flex_offer([(1, 2)], earliest_start=30, latest_start=10)

    def test_rejects_start_before_creation(self):
        with pytest.raises(InvalidFlexOfferError):
            flex_offer([(1, 2)], earliest_start=5, latest_start=10, creation_time=6)

    def test_rejects_deadline_after_latest_start(self):
        with pytest.raises(InvalidFlexOfferError):
            flex_offer(
                [(1, 2)], earliest_start=5, latest_start=10, assignment_before=11
            )

    def test_ends(self):
        fo = flex_offer([(1, 2), (1, 2)], earliest_start=10, latest_start=20)
        assert fo.earliest_end == 12
        assert fo.latest_end == 22

    def test_totals(self):
        fo = flex_offer([(1, 2), (3, 5)], earliest_start=0, latest_start=0)
        assert fo.total_min_energy == 4
        assert fo.total_max_energy == 7
        assert fo.total_energy_flexibility == 3

    def test_consumption_vs_production(self):
        cons = flex_offer([(1, 2)], earliest_start=0, latest_start=0)
        prod = flex_offer([(-2, -1)], earliest_start=0, latest_start=0)
        assert cons.is_consumption
        assert not prod.is_consumption

    def test_start_times_enumeration(self):
        fo = flex_offer([(1, 2)], earliest_start=3, latest_start=6)
        assert list(fo.start_times()) == [3, 4, 5, 6]

    def test_assignment_flexibility_uses_deadline(self):
        fo = flex_offer(
            [(1, 2)], earliest_start=10, latest_start=20, assignment_before=15
        )
        assert fo.assignment_flexibility(now=5) == 10
        assert fo.assignment_flexibility(now=15) == 0
        assert fo.assignment_flexibility(now=20) == 0  # never negative

    def test_assignment_flexibility_defaults_to_latest_start(self):
        fo = flex_offer([(1, 2)], earliest_start=10, latest_start=20)
        assert fo.assignment_flexibility(now=5) == 15

    def test_unique_auto_ids(self):
        a = flex_offer([(1, 2)], earliest_start=0, latest_start=0)
        b = flex_offer([(1, 2)], earliest_start=0, latest_start=0)
        assert a.offer_id != b.offer_id

    def test_with_times_keeps_identity(self):
        fo = flex_offer([(1, 2)], earliest_start=0, latest_start=5)
        moved = fo.with_times(2, 4)
        assert moved.offer_id == fo.offer_id
        assert (moved.earliest_start, moved.latest_start) == (2, 4)

    def test_profile_coerced_from_iterable(self):
        fo = FlexOffer(
            profile=Profile.from_bounds([(1, 2)]),
            earliest_start=0,
            latest_start=1,
        )
        assert isinstance(fo.profile, Profile)
