"""Unit tests for scheduled flex-offers and schedules."""

import pytest

from repro.core import InvalidScheduleError, Schedule, ScheduledFlexOffer, flex_offer
from repro.core.schedule import sum_profiles


@pytest.fixture
def offer():
    return flex_offer([(1, 2), (0, 4)], earliest_start=10, latest_start=14)


class TestScheduledFlexOffer:
    def test_valid_assignment(self, offer):
        s = ScheduledFlexOffer(offer, 12, (1.5, 2.0))
        assert s.end == 14
        assert s.total_energy == 3.5
        assert s.start_offset == 2

    def test_start_too_early(self, offer):
        with pytest.raises(InvalidScheduleError):
            ScheduledFlexOffer(offer, 9, (1.5, 2.0))

    def test_start_too_late(self, offer):
        with pytest.raises(InvalidScheduleError):
            ScheduledFlexOffer(offer, 15, (1.5, 2.0))

    def test_wrong_energy_count(self, offer):
        with pytest.raises(InvalidScheduleError):
            ScheduledFlexOffer(offer, 10, (1.5,))

    def test_energy_out_of_bounds(self, offer):
        with pytest.raises(InvalidScheduleError):
            ScheduledFlexOffer(offer, 10, (2.5, 2.0))

    def test_as_series(self, offer):
        s = ScheduledFlexOffer(offer, 11, (1.0, 3.0))
        ts = s.as_series()
        assert ts.start == 11
        assert list(ts.values) == [1.0, 3.0]

    def test_at_minimum(self, offer):
        s = ScheduledFlexOffer.at_minimum(offer)
        assert s.start == offer.earliest_start
        assert s.energies == (1, 0)

    def test_at_fraction_bounds(self, offer):
        lo = ScheduledFlexOffer.at_fraction(offer, 0.0)
        hi = ScheduledFlexOffer.at_fraction(offer, 1.0)
        assert lo.energies == (1, 0)
        assert hi.energies == (2, 4)

    def test_at_fraction_rejects_out_of_range(self, offer):
        with pytest.raises(InvalidScheduleError):
            ScheduledFlexOffer.at_fraction(offer, 1.5)


class TestSchedule:
    def test_flex_energy_series_within_horizon(self, offer):
        sched = Schedule(horizon_start=10, horizon_length=6)
        sched.add(ScheduledFlexOffer(offer, 12, (1.0, 4.0)))
        series = sched.flex_energy_series()
        assert series.start == 10
        assert list(series.values) == [0, 0, 1.0, 4.0, 0, 0]

    def test_truncates_outside_horizon(self, offer):
        sched = Schedule(horizon_start=10, horizon_length=4)
        sched.add(ScheduledFlexOffer(offer, 13, (1.0, 4.0)))
        assert list(sched.flex_energy_series().values) == [0, 0, 0, 1.0]

    def test_total_flex_energy(self, offer):
        sched = Schedule(horizon_start=0, horizon_length=20)
        sched.add(ScheduledFlexOffer(offer, 10, (1.0, 0.0)))
        sched.add(ScheduledFlexOffer(offer, 11, (2.0, 4.0)))
        assert sched.total_flex_energy() == 7.0
        assert len(sched) == 2

    def test_rejects_empty_horizon(self):
        with pytest.raises(InvalidScheduleError):
            Schedule(horizon_start=0, horizon_length=0)


class TestSumProfiles:
    def test_sums_over_union(self, offer):
        a = ScheduledFlexOffer(offer, 10, (1.0, 1.0))
        b = ScheduledFlexOffer(offer, 12, (2.0, 2.0))
        total = sum_profiles([a, b])
        assert total.start == 10
        assert list(total.values) == [1.0, 1.0, 2.0, 2.0]

    def test_rejects_empty(self):
        with pytest.raises(InvalidScheduleError):
            sum_profiles([])
