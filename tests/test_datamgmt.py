"""Tests for the typed tables, the star/snowflake schema and the LEDMS store."""

import pytest

from repro.core import TimeSeries, flex_offer
from repro.core.errors import DataManagementError
from repro.core.timebase import TimeAxis
from repro.datamgmt import (
    Column,
    DimensionTable,
    FactTable,
    LedmsStore,
    StarSchema,
    Table,
    build_mirabel_schema,
)


class TestColumn:
    def test_type_validation(self):
        column = Column("x", "int")
        assert column.validate(5) == 5
        with pytest.raises(DataManagementError):
            column.validate("five")

    def test_bool_is_not_int_or_float(self):
        with pytest.raises(DataManagementError):
            Column("x", "int").validate(True)
        with pytest.raises(DataManagementError):
            Column("x", "float").validate(False)

    def test_int_promotes_to_float(self):
        assert Column("x", "float").validate(3) == 3.0

    def test_nullable(self):
        assert Column("x", "int", nullable=True).validate(None) is None
        with pytest.raises(DataManagementError):
            Column("x", "int").validate(None)

    def test_unknown_dtype(self):
        with pytest.raises(DataManagementError):
            Column("x", "decimal")


class TestTable:
    def _table(self):
        return Table(
            "t",
            [Column("id", "int"), Column("name", "str"), Column("v", "float")],
            primary_key="id",
        )

    def test_insert_and_get(self):
        table = self._table()
        table.insert({"id": 1, "name": "a", "v": 2.0})
        assert table.get(1)["name"] == "a"
        assert table.get(2) is None
        assert len(table) == 1

    def test_duplicate_primary_key(self):
        table = self._table()
        table.insert({"id": 1, "name": "a", "v": 1.0})
        with pytest.raises(DataManagementError):
            table.insert({"id": 1, "name": "b", "v": 2.0})

    def test_unknown_column_rejected(self):
        with pytest.raises(DataManagementError):
            self._table().insert({"id": 1, "name": "a", "v": 1.0, "zzz": 9})

    def test_select_with_equality_and_predicate(self):
        table = self._table()
        table.insert_many(
            {"id": i, "name": "a" if i % 2 else "b", "v": float(i)}
            for i in range(6)
        )
        rows = table.select(lambda r: r["v"] >= 3, name="a")
        assert [r["id"] for r in rows] == [3, 5]

    def test_select_unknown_filter_column(self):
        with pytest.raises(DataManagementError):
            self._table().select(bogus=1)

    def test_aggregate(self):
        table = self._table()
        table.insert_many(
            {"id": i, "name": "a" if i % 2 else "b", "v": float(i)}
            for i in range(6)
        )
        result = table.aggregate(
            ["name"], {"total": ("v", "sum"), "n": ("v", "count")}
        )
        assert result[("a",)] == {"total": 1 + 3 + 5, "n": 3}
        assert result[("b",)] == {"total": 0 + 2 + 4, "n": 3}

    def test_aggregate_unknown_aggregate(self):
        with pytest.raises(DataManagementError):
            self._table().aggregate(["name"], {"x": ("v", "median")})

    def test_project(self):
        table = self._table()
        table.insert({"id": 1, "name": "a", "v": 2.0})
        assert table.project(table.select(), ["name", "v"]) == [("a", 2.0)]


class TestStarSchema:
    def _schema(self):
        schema = StarSchema("s")
        schema.add_dimension(
            DimensionTable(
                "region",
                [Column("region_id", "int"), Column("name", "str")],
                primary_key="region_id",
            )
        )
        schema.add_dimension(
            DimensionTable(
                "site",
                [Column("site_id", "int"), Column("name", "str"),
                 Column("region_id", "int")],
                primary_key="site_id",
                parent="region",
            )
        )
        schema.add_fact(
            FactTable("reading", ["site"], [Column("value", "float")])
        )
        return schema

    def test_snowflake_requires_parent_column(self):
        with pytest.raises(DataManagementError):
            DimensionTable(
                "bad",
                [Column("bad_id", "int")],
                primary_key="bad_id",
                parent="region",
            )

    def test_referential_integrity_on_dimension(self):
        schema = self._schema()
        with pytest.raises(DataManagementError):
            schema.insert_dimension_row(
                "site", {"site_id": 1, "name": "x", "region_id": 99}
            )

    def test_referential_integrity_on_fact(self):
        schema = self._schema()
        with pytest.raises(DataManagementError):
            schema.insert_fact("reading", {"site_id": 1, "value": 2.0})

    def test_join_expands_snowflake_transitively(self):
        schema = self._schema()
        schema.insert_dimension_row("region", {"region_id": 1, "name": "dk"})
        schema.insert_dimension_row(
            "site", {"site_id": 7, "name": "aalborg", "region_id": 1}
        )
        schema.insert_fact("reading", {"site_id": 7, "value": 3.5})
        rows = schema.join_facts("reading")
        assert rows[0]["site.name"] == "aalborg"
        assert rows[0]["region.name"] == "dk"
        assert rows[0]["value"] == 3.5

    def test_fact_requires_known_dimension(self):
        schema = StarSchema("s")
        with pytest.raises(DataManagementError):
            schema.add_fact(FactTable("f", ["ghost"], [Column("v", "float")]))

    def test_duplicate_table_names(self):
        schema = self._schema()
        with pytest.raises(DataManagementError):
            schema.add_dimension(
                DimensionTable(
                    "region",
                    [Column("region_id", "int")],
                    primary_key="region_id",
                )
            )


class TestLedmsStore:
    def _store(self):
        return LedmsStore(TimeAxis(15))

    def test_mirabel_schema_tables(self):
        schema = build_mirabel_schema()
        assert set(schema.dimensions) == {
            "market_area", "actor", "time", "energy_type", "offer_state",
        }
        assert set(schema.facts) == {
            "measurement", "forecast", "flexoffer_event", "price",
        }

    def test_measurement_round_trip(self):
        store = self._store()
        store.register_actor("brp-1", "brp")
        store.register_energy_type("wind", renewable=True)
        series = TimeSeries(10, [1.0, 2.0, 3.0])
        assert store.record_measurements("brp-1", "wind", series) == 3
        read = store.measurements("brp-1", "wind", 10, 13)
        assert read == series

    def test_measurements_dense_with_gaps(self):
        store = self._store()
        store.register_actor("a", "prosumer")
        store.register_energy_type("load", renewable=False)
        store.record_measurements("a", "load", TimeSeries(5, [1.0]))
        read = store.measurements("a", "load", 4, 8)
        assert list(read.values) == [0.0, 1.0, 0.0, 0.0]

    def test_unknown_actor_rejected(self):
        store = self._store()
        store.register_energy_type("load", renewable=False)
        with pytest.raises(DataManagementError):
            store.record_measurements("ghost", "load", TimeSeries(0, [1.0]))

    def test_actor_registration_idempotent(self):
        store = self._store()
        a = store.register_actor("x", "prosumer")
        b = store.register_actor("x", "prosumer")
        assert a == b

    def test_offer_lifecycle(self):
        store = self._store()
        store.register_actor("p", "prosumer")
        offer = flex_offer([(1, 2)], earliest_start=5, latest_start=9)
        store.record_offer_event("p", offer, "submitted", now=0)
        store.record_offer_event("p", offer, "scheduled", now=2)
        assert store.offer_state(offer.offer_id) == "scheduled"
        assert store.offers_in_state("scheduled") == [offer.offer_id]
        assert store.state_counts()["scheduled"] == 1

    def test_unknown_offer_state_rejected(self):
        store = self._store()
        store.register_actor("p", "prosumer")
        offer = flex_offer([(1, 2)], earliest_start=5, latest_start=9)
        with pytest.raises(DataManagementError):
            store.record_offer_event("p", offer, "vanished", now=0)

    def test_forecast_recording(self):
        store = self._store()
        store.register_actor("brp", "brp")
        store.register_energy_type("net", renewable=False)
        n = store.record_forecast("brp", "net", 96, TimeSeries(0, [5.0, 6.0]))
        assert n == 2
        rows = store.schema.facts["forecast"].select(horizon=96)
        assert len(rows) == 2


class TestPriceFacts:
    def test_record_and_read_prices(self):
        from repro.scheduling import Market

        store = LedmsStore(TimeAxis(15))
        store.register_actor("brp", "brp")
        market = Market.flat(4, buy_price=0.2, sell_price=0.05)
        assert store.record_prices("brp", market) == 4
        prices = store.prices("brp", 1, 3)
        assert prices == [(1, 0.2, 0.05), (2, 0.2, 0.05)]

    def test_rejects_non_market_object(self):
        store = LedmsStore(TimeAxis(15))
        store.register_actor("brp", "brp")
        with pytest.raises(DataManagementError):
            store.record_prices("brp", object())
