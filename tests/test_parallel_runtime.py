"""Process-parallel cluster runtime: shm codec, parity, lifecycle, traces.

The deterministic single-thread :class:`~repro.runtime.cluster.
ClusterRuntime` is the parity oracle: with TSO feedback pinned to the
final drain, a parallel run must admit the same offers and commit the
same micro start times, whatever the worker layout.  Lifecycle tests kill
workers mid-run and require zero leaked ``/dev/shm`` blocks, and the
2-worker trace must satisfy the same JSONL validator CI runs.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.aggregation import AggregatedFlexOffer
from repro.aggregation.pipeline import aggregate_from_scratch
from repro.aggregation.thresholds import AggregationParameters
from repro.api import LedmsClient
from repro.api.ledger import JsonlEventLog, OfferLedger
from repro.core.errors import CommunicationError, ServiceError
from repro.core.flexoffer import flex_offer, rebase_offer_ids
from repro.datamgmt.mirabel import OFFER_STATES
from repro.obs import JsonlWriter, Tracer
from repro.runtime import (
    ClusterConfig,
    ClusterRuntime,
    IngestConfig,
    LoadGenerator,
    SchedulingConfig,
    ServiceConfig,
    TsoConfig,
)
from repro.runtime.parallel import (
    ParallelClusterRuntime,
    ProcessBusTransport,
    WorkerCrashError,
)
from repro.runtime.shm import (
    cleanup_run_segments,
    decode_macros,
    encode_macros,
    read_snapshot,
    segment_name,
    unlink_segment,
    write_snapshot,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _macros(n_offers: int = 9, seed_start: int = 4):
    offers = [
        flex_offer(
            [(1.0 + i * 0.25, 2.0 + i * 0.5)] * (1 + i % 3),
            earliest_start=seed_start + i % 4,
            latest_start=seed_start + 6 + i % 4,
            owner=f"house-{i % 3}",
            creation_time=i % 4,
            assignment_before=None if i % 2 else seed_start + 6 + i % 4,
            unit_price=0.05 * i,
        )
        for i in range(n_offers)
    ]
    macros = aggregate_from_scratch(
        offers, AggregationParameters(start_after_tolerance=2,
                                      time_flexibility_tolerance=2)
    )
    assert macros, "aggregation produced no macros"
    return macros


def _service_config(seed: int = 7) -> ServiceConfig:
    return ServiceConfig(
        scheduling=SchedulingConfig(scheduler_passes=1, seed=seed),
        ingest=IngestConfig(batch_size=32),
    )


def _cluster_config(brps: int = 4, **tso_kwargs) -> ClusterConfig:
    return ClusterConfig.uniform(
        brps,
        _service_config(),
        tso=TsoConfig(scheduler_passes=1, **tso_kwargs),
    )


def _streams(names, duration: float, rate: float = 40.0):
    # Rebase the process-global offer-id counter so both runtime modes
    # mint identical micro-offer ids for identical seeded streams.
    rebase_offer_ids(0)
    return {
        name: list(
            LoadGenerator(rate_per_hour=rate, seed=11 + i).stream(
                0.0, duration
            )
        )
        for i, name in enumerate(names)
    }


def _shm_residue(run_id: str) -> list[str]:
    prefix = f"repro-shm-{run_id}-"
    try:
        return [e for e in os.listdir("/dev/shm") if e.startswith(prefix)]
    except OSError:  # pragma: no cover - non-Linux
        return []


# ----------------------------------------------------------------------
class TestShmCodec:
    def test_round_trip_is_exact(self):
        macros = _macros()
        rebuilt = decode_macros(encode_macros(macros))
        assert len(rebuilt) == len(macros)
        for original, copy in zip(macros, rebuilt):
            assert copy == original
            assert copy.offsets == original.offsets
            assert copy.members == original.members
            assert [m.owner for m in copy.members] == [
                m.owner for m in original.members
            ]
            assert [m.assignment_before for m in copy.members] == [
                m.assignment_before for m in original.members
            ]

    def test_rejects_non_aggregate_and_nested_members(self):
        plain = flex_offer([(1.0, 2.0)], earliest_start=0, latest_start=4)
        with pytest.raises(ServiceError, match="not an aggregate"):
            encode_macros([plain])
        inner = _macros(4)[0]
        nested = AggregatedFlexOffer(
            profile=inner.profile,
            earliest_start=inner.earliest_start,
            latest_start=inner.latest_start,
            offer_id=inner.offer_id + 1,
            owner="nested",
            members=(inner,),
            offsets=(0,),
        )
        with pytest.raises(ServiceError, match="one level deep"):
            encode_macros([nested])

    def test_segment_lifecycle_and_sweep(self):
        macros = _macros()
        name = segment_name("testrun", 0, 1)
        _, nbytes = write_snapshot(macros, name)
        assert nbytes > 0
        assert read_snapshot(name) == tuple(macros)
        assert unlink_segment(name) is True
        assert unlink_segment(name) is False  # already gone
        # Crash sweep reclaims whatever the decode path never touched.
        write_snapshot(macros, segment_name("testrun", 1, 1))
        write_snapshot(macros, segment_name("testrun", 1, 2))
        assert cleanup_run_segments("testrun") == 2
        assert _shm_residue("testrun") == []


# ----------------------------------------------------------------------
class TestParity:
    def test_parallel_matches_single_thread_oracle(self):
        """Fixed seed, drain-only TSO: same accepted set, same commitments.

        ``trigger_refreshes`` is pinned above the snapshot count in BOTH
        modes so TSO feedback lands only in the final drain — mid-run
        downlink timing is the one place the epoch barrier differs from
        the single-thread interleaving (see the runtime's docstring).
        """
        duration = 24.0
        accepted_states = [
            s for s in OFFER_STATES if s not in ("submitted", "rejected")
        ]

        single = ClusterRuntime(
            _cluster_config(trigger_refreshes=10**9)
        )
        report_single = single.run(
            _streams(single.clients, duration), duration
        )
        accepted_single = {
            name: sorted(
                set().union(
                    *(
                        client.service.store.offers_in_state(s)
                        for s in accepted_states
                    )
                )
            )
            for name, client in single.clients.items()
        }
        committed_single = {
            name: dict(client.service._committed_start)
            for name, client in single.clients.items()
        }

        parallel = ParallelClusterRuntime(
            _cluster_config(trigger_refreshes=10**9), workers=2
        )
        report_parallel = parallel.run(
            _streams(parallel.config.brps, duration), duration
        )

        assert parallel.accepted_offers == accepted_single
        assert parallel.committed_starts == committed_single
        assert report_parallel.offers_accepted == report_single.offers_accepted
        assert report_parallel.tso_plan_cost == report_single.tso_plan_cost
        assert report_parallel.bus_dropped == 0
        assert _shm_residue(parallel.run_id) == []

    def test_default_config_admits_identically(self):
        """Under live TSO feedback the admitted offer set still matches."""
        duration = 24.0
        single = ClusterRuntime(_cluster_config())
        report_single = single.run(
            _streams(single.clients, duration), duration
        )
        parallel = ParallelClusterRuntime(_cluster_config(), workers=2)
        report_parallel = parallel.run(
            _streams(parallel.config.brps, duration), duration
        )
        assert report_parallel.offers_accepted == report_single.offers_accepted
        assert report_parallel.offers_submitted == report_single.offers_submitted
        assert report_parallel.remote_commits > 0
        assert report_parallel.workers == 2
        assert report_parallel.shm_segments > 0
        assert "workers" in report_parallel.as_text()


# ----------------------------------------------------------------------
class TestLifecycle:
    def _run_in_thread(self, cluster, duration=96.0, rate=60.0):
        streams = _streams(cluster.config.brps, duration, rate=rate)
        box = {}

        def target():
            try:
                box["report"] = cluster.run(streams, duration)
            except BaseException as exc:  # noqa: BLE001 - surfaced to test
                box["error"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        return thread, box

    def _wait_for_workers(self, cluster, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            procs = [p for p in cluster._procs if p.is_alive()]
            if len(procs) == cluster.workers:
                return procs
            time.sleep(0.01)
        raise AssertionError("workers never came up")

    def test_sigkill_mid_run_raises_and_leaks_nothing(self):
        cluster = ParallelClusterRuntime(_cluster_config(), workers=2)
        thread, box = self._run_in_thread(cluster)
        victim = self._wait_for_workers(cluster)[0]
        os.kill(victim.pid, signal.SIGKILL)
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert isinstance(box.get("error"), WorkerCrashError)
        # Every worker is reaped and every segment of this run is swept.
        for proc in cluster._procs:
            assert not proc.is_alive()
        assert _shm_residue(cluster.run_id) == []

    def test_sigterm_drains_gracefully(self):
        cluster = ParallelClusterRuntime(_cluster_config(), workers=2)
        thread, box = self._run_in_thread(cluster)
        victim = self._wait_for_workers(cluster)[0]
        os.kill(victim.pid, signal.SIGTERM)
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        # A terminated worker ends the run as a crash from the parent's
        # perspective, but its SIGTERM path unlinks its own segments, so
        # nothing is left even before the parent's sweep.
        assert isinstance(box.get("error"), WorkerCrashError)
        assert _shm_residue(cluster.run_id) == []

    def test_run_is_single_use_and_validates_workers(self):
        with pytest.raises(ServiceError, match="workers must be positive"):
            ParallelClusterRuntime(_cluster_config(), workers=0)
        with pytest.raises(ServiceError, match="at least one BRP"):
            ParallelClusterRuntime(_cluster_config(brps=2), workers=3)
        cluster = ParallelClusterRuntime(_cluster_config(brps=2), workers=2)
        cluster.run(_streams(cluster.config.brps, 8.0), 8.0)
        with pytest.raises(ServiceError, match="runs once"):
            cluster.run({}, 8.0)

    def test_transport_rejects_foreign_messages(self):
        transport = ProcessBusTransport(
            None,
            run_id="x",
            worker_index=0,
            tso_name="tso",
            tracer=Tracer(),
        )
        from repro.node.messages import MessageType

        with pytest.raises(CommunicationError, match="only uplinks"):
            transport.send(
                "brp-0", "brp-1", MessageType.FLEX_OFFER_SUBMIT, (), 0.0
            )


# ----------------------------------------------------------------------
class TestLedgerRecovery:
    def test_worker_kill_then_resume_from_ledger(self, tmp_path):
        """Per-worker journals survive a SIGKILL and rebuild their nodes."""

        def ledger_factory(index: int, name: str):
            log = JsonlEventLog(tmp_path / f"worker-{index}" / name)
            return OfferLedger(log, node=name)

        cluster = ParallelClusterRuntime(
            _cluster_config(), workers=2, ledger_factory=ledger_factory
        )
        lifecycle = TestLifecycle()
        thread, box = lifecycle._run_in_thread(cluster)
        victims = lifecycle._wait_for_workers(cluster)
        # Let the run journal some facts before the kill.
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if any(
                p.stat().st_size > 0 for p in tmp_path.rglob("*.jsonl")
            ):
                break
            time.sleep(0.02)
        os.kill(victims[0].pid, signal.SIGKILL)
        thread.join(timeout=30.0)
        assert isinstance(box.get("error"), WorkerCrashError)

        ledger_dirs = sorted(
            p.parent for p in tmp_path.rglob("*.jsonl")
        )
        assert ledger_dirs, "no worker journaled anything before the kill"
        resumed_offers = 0
        for directory in dict.fromkeys(ledger_dirs):
            resumed = LedmsClient.resume_from_ledger(
                str(directory), _service_config(), name=directory.name
            )
            counts = resumed.service.store.state_counts()
            resumed_offers += sum(counts.values())
        assert resumed_offers > 0

    def test_cli_parallel_ledger_layout(self, tmp_path):
        from repro.__main__ import EXIT_OK, main

        ledger = tmp_path / "led"
        assert (
            main(
                [
                    "loadtest", "--brps", "2", "--workers", "2",
                    "--rate", "10", "--duration", "8", "--passes", "1",
                    "--ledger", str(ledger),
                ]
            )
            == EXIT_OK
        )
        assert (ledger / "worker-0" / "brp-0").is_dir()
        assert (ledger / "worker-1" / "brp-1").is_dir()


# ----------------------------------------------------------------------
class TestTracing:
    def test_two_worker_trace_passes_the_jsonl_validator(self, tmp_path):
        path = tmp_path / "parallel.jsonl"
        writer = JsonlWriter(str(path))
        tracer = Tracer(sink=writer)
        cluster = ParallelClusterRuntime(
            _cluster_config(), workers=2, tracer=tracer
        )
        duration = 16.0
        cluster.run(_streams(cluster.config.brps, duration), duration)
        writer.close()

        result = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / "check_trace_jsonl.py"),
                str(path),
            ],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr or result.stdout

        # Cross-pipe pairing, checked directly: every deliver (including
        # relayed worker publishes) pairs with a publish, seq is strictly
        # monotone, and both worker id bands appear.
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        published = {
            r["message_id"]
            for r in records
            if r["event"] == "bus" and r["action"] == "publish"
        }
        delivered = {
            r["message_id"]
            for r in records
            if r["event"] == "bus" and r["action"] == "deliver"
        }
        assert delivered <= published
        uplinks = {m for m in published if m >= 10**9}
        assert any(10**9 <= m < 2 * 10**9 for m in uplinks)
        assert any(2 * 10**9 <= m < 3 * 10**9 for m in uplinks)

    def test_offer_chain_crosses_the_process_boundary(self, tmp_path):
        from repro.obs import load_trace, render_offer_tree

        path = tmp_path / "chain.jsonl"
        writer = JsonlWriter(str(path))
        cluster = ParallelClusterRuntime(
            _cluster_config(), workers=2, tracer=Tracer(sink=writer)
        )
        duration = 16.0
        cluster.run(_streams(cluster.config.brps, duration), duration)
        writer.close()
        events = load_trace(str(path))
        committed = [
            r for r in events
            if r.get("event") == "offer" and r.get("state") == "remote_commit"
        ]
        assert committed, "no offer completed the BRP→TSO→BRP loop"
        tree = render_offer_tree(events, committed[0]["offer_id"])
        assert "tso" in tree and "remote_commit" in tree
