"""End-to-end tests of the streaming BRP service loop (tiny, deterministic).

The configs here follow the CP-SAT test discipline: fixed seeds, small rates
and short simulated windows so the whole file runs in seconds while still
driving every stage (ingest → incremental aggregation → triggered scheduling
→ disaggregation → expiry) through real traffic.
"""

import numpy as np
import pytest

from repro.aggregation import DirtySet
from repro.core import flex_offer
from repro.core.errors import ServiceError
from repro.runtime.planning import PlanSession
from repro.runtime import (
    AgeTrigger,
    ServiceConfig,
    AnyTrigger,
    BrpRuntimeService,
    CountTrigger,
    ImbalanceTrigger,
    LoadGenerator,
    RuntimeConfig,
)

TINY = RuntimeConfig(
    batch_size=8,
    horizon_slices=96,
    scheduler_passes=1,
    trigger=AnyTrigger([CountTrigger(20), AgeTrigger(8), ImbalanceTrigger(400.0)]),
    min_run_interval_slices=2.0,
    seed=0,
)


def _run(duration=48, rate=30, seed=11, config=TINY, **kwargs):
    service = BrpRuntimeService(config, **kwargs)
    generator = LoadGenerator(rate_per_hour=rate, seed=seed)
    report = service.run_stream(generator.stream(0, duration), duration)
    return service, report


def _offer(est, tf=4, duration=2, lo=1.0, hi=2.0, **kw):
    return flex_offer(
        [(lo, hi)] * duration, earliest_start=est, latest_start=est + tf, **kw
    )


class TestServiceLoop:
    def test_stream_flows_through_all_stages(self):
        service, report = _run()
        assert report.offers_accepted > 0
        assert report.offers_scheduled > 0
        assert report.aggregation_runs > 0
        assert report.scheduling_runs > 0
        assert report.offers_accepted == report.offers_submitted - report.offers_rejected
        # Every accepted offer ends up scheduled, expired, or still live.
        assert (
            report.offers_scheduled + report.offers_expired
            >= report.offers_accepted - service.live_offers
        )

    def test_incremental_pool_maintained(self):
        service, report = _run()
        # The pool's micro-offer count matches the live, unretired set.
        assert report.pool_offers == service.live_offers
        assert report.pool_aggregates == len(service.pool)
        assert report.pool_aggregates <= report.pool_offers

    def test_store_records_full_lifecycle(self):
        service, report = _run()
        counts = service.store.state_counts()
        assert counts["scheduled"] + counts["executed"] == report.offers_scheduled
        assert counts["expired"] == report.offers_expired
        tracked = sum(counts.values())
        assert tracked == report.offers_accepted

    def test_deterministic_for_fixed_seed(self):
        _, first = _run(duration=36, seed=5)
        _, second = _run(duration=36, seed=5)
        assert first.offers_accepted == second.offers_accepted
        assert first.offers_scheduled == second.offers_scheduled
        assert first.scheduling_runs == second.scheduling_runs
        assert first.trigger_fires == second.trigger_fires
        assert first.latency_slices_p95 == second.latency_slices_p95

    def test_different_seed_different_stream(self):
        _, first = _run(duration=36, seed=5)
        _, second = _run(duration=36, seed=6)
        assert first.offers_accepted != second.offers_accepted

    def test_latency_bounded_by_age_trigger(self):
        # With a horizon wide enough that every arriving offer's window fits
        # immediately, the age trigger (8 slices) plus the cooldown bounds
        # end-to-end latency; a narrow horizon instead defers far-out offers.
        config = RuntimeConfig(
            batch_size=8,
            horizon_slices=240,
            scheduler_passes=1,
            trigger=AnyTrigger([CountTrigger(20), AgeTrigger(8)]),
            min_run_interval_slices=2.0,
        )
        service, report = _run(duration=96, config=config)
        assert 0 < report.latency_slices_p95 <= 16

    def test_report_text_mentions_key_metrics(self):
        _, report = _run(duration=24)
        text = report.as_text()
        assert "offers/sec" in text
        assert "p95" in text
        assert "scheduling runs" in text


class TestSchedulingIntegration:
    def test_warm_start_used_on_rescheduling(self):
        service, _ = _run(duration=48)
        assert service.metrics.counter("schedule.warm_started").value > 0

    def test_scheduled_members_respect_their_bounds(self):
        service, _ = _run(duration=48)
        schedule = service.last_schedule
        assert schedule is not None
        # Validity of member assignments is enforced by ScheduledFlexOffer's
        # own invariants during disaggregation; re-check the aggregates here.
        for assignment in schedule:
            offer = assignment.offer
            assert offer.earliest_start <= assignment.start <= offer.latest_start
            for energy, constraint in zip(assignment.energies, offer.profile):
                assert constraint.contains(energy)

    def test_manual_submit_and_forced_run(self):
        service = BrpRuntimeService(TINY)
        for i in range(6):
            assert service.submit(_offer(10 + i, tf=6))
        service.run_aggregation()
        result = service.maybe_schedule(force=True)
        assert result is not None
        assert len(service._scheduled) == 6

    def test_past_earliest_start_still_schedulable(self):
        # An offer whose earliest start passed while it waited must not be
        # stranded: the window is clipped to "now" and it still schedules.
        service = BrpRuntimeService(TINY)
        service.submit(_offer(2, tf=20))
        service.run_aggregation()
        service.queue.clock.advance_to(10)  # earliest_start=2 is now past
        result = service.maybe_schedule(force=True)
        assert result is not None
        assert len(service._scheduled) == 1
        schedule = service.last_schedule
        assert schedule.assignments[0].start >= 10

    def test_empty_pool_schedule_is_counted_not_run(self):
        service = BrpRuntimeService(TINY)
        result = service.maybe_schedule(force=True)
        assert result is None
        assert service.metrics.counter("schedule.empty_runs").value == 1


class TestExpiry:
    def test_unscheduled_offers_expire(self):
        config = RuntimeConfig(
            batch_size=8,
            horizon_slices=96,
            scheduler_passes=1,
            # Triggers that never fire: offers age out unscheduled.
            trigger=CountTrigger(10_000),
            min_run_interval_slices=2.0,
        )
        service = BrpRuntimeService(config)
        service.submit(_offer(2, tf=2))
        service.queue.clock.advance_to(10)
        retired = service.sweep_expired()
        assert retired == 1
        report = service.report(duration_slices=10, wall_seconds=0.1)
        assert report.offers_expired == 1
        assert report.pool_offers == 0

    def test_scheduled_offers_execute(self):
        service = BrpRuntimeService(TINY)
        service.submit(_offer(4, tf=2))
        service.run_aggregation()
        service.maybe_schedule(force=True)
        service.queue.clock.advance_to(20)
        service.sweep_expired()
        counts = service.store.state_counts()
        assert counts["executed"] == 1
        assert service.live_offers == 0

    def test_begun_offer_not_replanned(self):
        # Once an offer's committed start passes, re-planning must not move
        # it: the next scheduling run retires it as executed first.
        service = BrpRuntimeService(TINY)
        service.submit(_offer(4, tf=20))
        service.run_aggregation()
        service.maybe_schedule(force=True)
        (oid,) = list(service._scheduled)
        committed = service._committed_start[oid]
        service.queue.clock.advance_to(committed + 1)
        result = service.maybe_schedule(force=True)
        assert result is None  # pool emptied by the pre-run sweep
        assert service.store.offer_state(oid) == "executed"
        assert service.live_offers == 0

    def test_scheduled_set_pruned_but_total_kept(self):
        service = BrpRuntimeService(TINY)
        service.submit(_offer(4, tf=2))
        service.run_aggregation()
        service.maybe_schedule(force=True)
        assert len(service._scheduled) == 1
        service.queue.clock.advance_to(20)
        service.sweep_expired()
        # The live tracking set is bounded; the report total is cumulative.
        assert len(service._scheduled) == 0
        report = service.report(duration_slices=20, wall_seconds=0.1)
        assert report.offers_scheduled == 1

    def test_expiry_before_flush_keeps_terminal_state(self):
        # An offer retired while its insert still sits in the unflushed
        # batch must stay "expired" — the flush may not regress it to
        # "aggregated" (and the pipeline must not crash on the
        # insert+delete pair cancelling within one run).
        config = RuntimeConfig(
            batch_size=1000,  # never auto-flush
            horizon_slices=96,
            scheduler_passes=1,
            trigger=CountTrigger(10_000),
        )
        service = BrpRuntimeService(config)
        service.submit(_offer(2, tf=2))
        (offer_id,) = list(service._live)
        service.queue.clock.advance_to(10)
        service.sweep_expired()
        service.run_aggregation()
        assert service.store.offer_state(offer_id) == "expired"
        assert service.pipeline.input_count == 0


class TestAssignmentDeadline:
    def test_aggregate_past_assignment_deadline_not_scheduled(self):
        service = BrpRuntimeService(TINY)
        service.submit(_offer(10, tf=20, assignment_before=12))
        service.run_aggregation()
        service.queue.clock.advance_to(14)  # deadline passed, window open
        result = service.maybe_schedule(force=True)
        assert result is None  # only ineligible work → empty run
        assert len(service._scheduled) == 0

    def test_deadline_passed_offer_expires_despite_open_window(self):
        service = BrpRuntimeService(TINY)
        service.submit(_offer(10, tf=20, assignment_before=12))
        service.run_aggregation()
        service.queue.clock.advance_to(14)
        service.sweep_expired()
        counts = service.store.state_counts()
        assert counts["expired"] == 1
        assert service.live_offers == 0


class TestRunStreamValidation:
    def test_zero_report_every_rejected(self):
        service = BrpRuntimeService(TINY)
        with pytest.raises(ServiceError):
            service.run_stream([], 10, report_every=0)

    def test_sequential_windows_do_not_lose_boundary_arrival(self):
        # Discovering the window closed requires pulling one arrival beyond
        # it; a follow-up run_stream on the same iterator must replay that
        # lookahead instead of dropping it.
        def arrivals():
            yield 1.0, _offer(10, tf=6)
            yield 15.0, _offer(25, tf=6)
            yield 21.0, _offer(30, tf=6)

        service = BrpRuntimeService(TINY)
        stream = arrivals()
        first = service.run_stream(stream, 10)
        assert first.offers_accepted == 1
        second = service.run_stream(stream, 10)  # window [10, 20)
        assert second.offers_accepted == 2
        third = service.run_stream(stream, 10)  # window [20, 30)
        assert third.offers_accepted == 3

    def test_lazy_arrival_consumption(self):
        # run_stream must pull arrivals one at a time, not drain the
        # iterator up front.
        pulled = []

        def arrivals():
            for i in range(5):
                pulled.append(i)
                yield float(i), _offer(10 + i, tf=6)

        service = BrpRuntimeService(TINY)
        iterator = arrivals()
        service.queue.schedule_at(0.5, lambda: pulled.append("mid"))

        # Prime the stream but stop the clock after the first arrival: only
        # the consumed prefix may have been pulled.
        report = service.run_stream(iterator, 2.5)
        assert report.offers_accepted == 3  # t=0, 1, 2 inside the window
        assert pulled[0] == 0
        assert "mid" in pulled
        # The generator was never drained past the first out-of-window item.
        assert pulled.index("mid") < len(pulled) - 1


class TestConfigValidation:
    def test_invalid_config_rejected(self):
        with pytest.raises(ServiceError):
            RuntimeConfig(batch_size=0)
        with pytest.raises(ServiceError):
            RuntimeConfig(horizon_slices=-1)
        with pytest.raises(ServiceError):
            RuntimeConfig(scheduler_passes=0)
        with pytest.raises(ServiceError):
            RuntimeConfig(expiry_sweep_interval=0)


class TestNetForecastWindow:
    def test_provided_forecast_is_windowed(self):
        from repro.core.timeseries import TimeSeries
        from repro.runtime.service import net_forecast_window

        series = TimeSeries(0, np.arange(200, dtype=float))
        window = net_forecast_window(series, 10, 106)
        assert window.start == 10
        assert window.values[0] == 10.0
        # Beyond the provided series the forecast falls back to zero.
        window = net_forecast_window(series, 150, 246)
        assert window.values[49] == 199.0
        assert window.values[50] == 0.0
        # No forecast at all: all-zero window.
        assert net_forecast_window(None, 0, 8).values.sum() == 0.0


class TestPlanSession:
    def test_warm_candidate_none_for_all_new_pool(self):
        session = PlanSession()
        assert session.warm_candidate([("a", _offer(2))]) is None

    def test_warm_candidate_duration_mismatch_falls_back_to_default(self):
        session = PlanSession()
        session.warm["a"] = (3, np.array([1.5, 1.5, 1.5]))
        shrunk = _offer(2, duration=2)
        # A lone mismatched prior leaves no warm content at all.
        assert session.warm_candidate([("a", shrunk)]) is None
        # Next to a usable prior, the mismatch falls back to the
        # earliest-start / minimum-energy default placement.
        session.warm["b"] = (4, np.array([1.2, 1.2]))
        candidate = session.warm_candidate(
            [("a", shrunk), ("b", _offer(2, duration=2))]
        )
        assert candidate is not None
        assert candidate.starts[0] == shrunk.earliest_start
        assert np.array_equal(
            candidate.energies[0], shrunk.profile.min_energies()
        )
        assert candidate.starts[1] == 4
        assert np.array_equal(candidate.energies[1], [1.2, 1.2])

    def test_warm_candidate_clips_into_current_window_and_bounds(self):
        session = PlanSession()
        offer = _offer(6, tf=4, duration=2, lo=1.0, hi=2.0)
        session.warm["a"] = (0, np.array([9.0, 9.0]))
        candidate = session.warm_candidate([("a", offer)])
        assert candidate.starts[0] == offer.earliest_start  # clipped up
        assert np.array_equal(candidate.energies[0], [2.0, 2.0])
        session.warm["a"] = (30, np.array([0.0, 0.0]))
        candidate = session.warm_candidate([("a", offer)])
        assert candidate.starts[0] == offer.latest_start  # clipped down
        assert np.array_equal(candidate.energies[0], [1.0, 1.0])

    def test_absorb_accumulates_dirt_and_evicts_deleted(self):
        session = PlanSession()
        session.warm["gone"] = (0, np.array([1.0]))
        session.warm["kept"] = (2, np.array([1.0]))
        session.absorb(
            DirtySet(
                created=frozenset({"new"}),
                changed=frozenset({"kept"}),
                deleted=frozenset({"gone"}),
            )
        )
        assert session.dirty == {"new", "kept", "gone"}
        assert "gone" not in session.warm and "kept" in session.warm


class TestDeltaSchedulerService:
    def _config(self):
        return ServiceConfig.from_flat(
            batch_size=8,
            scheduler="delta",
            scheduler_passes=1,
            trigger=AnyTrigger([CountTrigger(20), AgeTrigger(8)]),
            min_run_interval_slices=0.0,
            seed=0,
        )

    def test_clean_rerun_reuses_every_group(self):
        service = BrpRuntimeService(self._config())
        # Spread starts widely so aggregation builds several groups; one
        # later insert then dirties a small fraction of the pool (below the
        # scheduler's full-pass fallback threshold).
        for est in (8, 16, 24, 32, 40, 48, 56, 64):
            for duration in (1, 3):
                assert service.submit(_offer(est, tf=6, duration=duration))
        service.run_aggregation()
        assert service.maybe_schedule(force=True) is not None
        assert service.session.last_mode == "full"
        n_groups = len(service.session.warm)
        assert n_groups > 0
        # Nothing changed since: the re-run is a pure delta pass.
        assert service.maybe_schedule(force=True) is not None
        assert service.session.last_mode == "delta"
        assert service.session.last_reused == n_groups
        assert service.session.last_replaced == 0
        # One new offer dirties only the group it lands in.
        assert service.submit(_offer(70, tf=6))
        service.run_aggregation()
        assert service.maybe_schedule(force=True) is not None
        assert service.session.last_mode == "delta"
        assert service.session.last_replaced >= 1
        assert service.session.last_reused >= n_groups - 1
        assert service.metrics.counter("delta.runs").value == 2
        assert service.metrics.counter("delta.full_fallbacks").value == 1
        assert service.metrics.counter("delta.reused_placements").value > 0

    def test_streamed_delta_run_matches_invariants(self):
        service, report = _run(duration=48, config=self._config())
        assert report.offers_accepted > 0
        runs = service.metrics.counter("delta.runs").value
        fallbacks = service.metrics.counter("delta.full_fallbacks").value
        assert runs + fallbacks == service.metrics.counter("schedule.runs").value
        schedule = service.last_schedule
        assert schedule is not None
        for assignment in schedule:
            offer = assignment.offer
            assert offer.earliest_start <= assignment.start <= offer.latest_start
            for energy, constraint in zip(assignment.energies, offer.profile):
                assert constraint.contains(energy)

    def test_schedule_run_seconds_alias_tracks_stage_timer(self):
        service, _ = _run(duration=48, config=self._config())
        runs = service.metrics.histogram("schedule.run_seconds").count
        stage = service.metrics.histogram(
            "stage.wall_seconds", labels={"brp": service.name, "stage": "schedule"}
        )
        assert runs > 0 and stage.count == runs
