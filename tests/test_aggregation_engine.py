"""Columnar aggregation engine vs the scalar reference oracle.

The central property: on any update stream, the packed engine's aggregates
and ``AggregateUpdate`` sequences are identical to the scalar pipelines'.
The corpus uses dyadic-rational energies (multiples of 1/8), for which float
addition and subtraction are exact, so "identical" means **bit-identical**
even though the packed engine maintains group profiles by subtraction where
the reference oracle rebuilds from the remaining members.  A separate test
pins packed ≡ (live) scalar on arbitrary floats: both paths apply the same
adds and subtracts in the same order, so they agree to the last bit with no
exactness assumption.
"""

import numpy as np
import pytest

from repro.aggregation import (
    AggregationParameters,
    BinPackerBounds,
    FlexOfferUpdate,
    GroupProfileState,
    PackedPool,
    UpdateKind,
    make_pipeline,
)
from repro.aggregation.reference import reference_aggregate_group
from repro.core import flex_offer
from repro.core.errors import AggregationError
from repro.core.flexoffer import Profile
from repro.runtime import FlexOfferIngest, ShardedFlexOfferIngest


# ----------------------------------------------------------------------
# scenario machinery
# ----------------------------------------------------------------------
def _dyadic(rng, n, spread=8.0):
    """Floats that are exact under reassociation (multiples of 1/8)."""
    return rng.integers(-int(spread * 8), int(spread * 8), size=n) / 8.0


def _random_offer(rng):
    duration = int(rng.integers(1, 5))
    a = _dyadic(rng, duration)
    b = _dyadic(rng, duration)
    bounds = list(zip(np.minimum(a, b), np.maximum(a, b)))
    est = int(rng.integers(0, 40))
    tf = int(rng.integers(0, 12))
    deadline = (
        int(rng.integers(est, est + tf + 1)) if tf and rng.random() < 0.3 else None
    )
    return flex_offer(
        bounds,
        earliest_start=est,
        latest_start=est + tf,
        assignment_before=deadline,
        unit_price=float(rng.integers(0, 8)) / 8.0,
    )


def _aggregate_summary(aggregate):
    return (
        aggregate.earliest_start,
        aggregate.latest_start,
        aggregate.creation_time,
        -1 if aggregate.assignment_before is None else aggregate.assignment_before,
        aggregate.unit_price,
        aggregate.profile.min_energies(),
        aggregate.profile.max_energies(),
        tuple(m.offer_id for m in aggregate.members),
        aggregate.offsets,
    )


def _pool_summary(pipeline):
    return sorted(_aggregate_summary(a) for a in pipeline.aggregates)


def _updates_summary(updates):
    return sorted(
        (u.group_id, u.kind.value, _aggregate_summary(u.aggregate))
        for u in updates
    )


def _run_scenario(seed, *, engines=("reference", "scalar", "packed"), bounds=None):
    """Feed one random mixed insert/update/delete stream to every engine."""
    rng = np.random.default_rng(seed)
    parameters = AggregationParameters(
        start_after_tolerance=int(rng.integers(0, 9)),
        time_flexibility_tolerance=int(rng.integers(0, 9)),
        name="prop",
    )
    pipelines = {name: make_pipeline(parameters, bounds, engine=name) for name in engines}
    live = []
    for _ in range(int(rng.integers(2, 7))):
        inserts = [_random_offer(rng) for _ in range(int(rng.integers(0, 7)))]
        n_del = int(rng.integers(0, min(4, len(live)) + 1))
        deletes = [live.pop(int(rng.integers(len(live)))) for _ in range(n_del)]
        live.extend(inserts)
        # Occasionally delete-and-reinsert a live offer within one flush
        # (the withdrawal-then-return path) — membership is unchanged but
        # the group must still emit a MODIFIED update.
        churn = []
        if live and rng.random() < 0.3:
            churn = [live[int(rng.integers(len(live)))]]

        per_engine = {}
        for name, pipeline in pipelines.items():
            pipeline.submit_inserts(inserts)
            pipeline.submit_deletes(deletes)
            for offer in churn:
                pipeline.submit(FlexOfferUpdate.delete(offer))
                pipeline.submit(FlexOfferUpdate.insert(offer))
            per_engine[name] = _updates_summary(pipeline.run())

        first = per_engine[engines[0]]
        for name in engines[1:]:
            assert per_engine[name] == first, (seed, name)
        pools = {name: _pool_summary(p) for name, p in pipelines.items()}
        for name in engines[1:]:
            assert pools[name] == pools[engines[0]], (seed, name)
    counts = {p.input_count for p in pipelines.values()}
    assert counts == {len(live)}


# ----------------------------------------------------------------------
# the headline property: 200+ random pools, all engines bit-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("block", range(8))
def test_packed_matches_reference_on_random_streams(block):
    """25 scenarios per block × 8 blocks = 200 random pools."""
    for seed in range(block * 25, block * 25 + 25):
        _run_scenario(seed)


@pytest.mark.parametrize("property_name", ["count", "energy", "time_flexibility"])
def test_packed_matches_scalar_with_binpacker(property_name):
    bounds = BinPackerBounds(property_name, minimum=0.0, maximum=6.0)
    for seed in range(40):
        _run_scenario(seed, engines=("scalar", "packed"), bounds=bounds)


def test_packed_matches_scalar_on_arbitrary_floats():
    """No dyadic crutch: live scalar and packed apply identical op sequences."""
    rng = np.random.default_rng(7)
    parameters = AggregationParameters(4, 4, name="float")
    scalar = make_pipeline(parameters, engine="scalar")
    packed = make_pipeline(parameters, engine="packed")
    live = []
    for _ in range(12):
        inserts = []
        for _ in range(int(rng.integers(0, 6))):
            duration = int(rng.integers(1, 5))
            a = rng.normal(size=duration)
            b = rng.normal(size=duration)
            inserts.append(
                flex_offer(
                    list(zip(np.minimum(a, b), np.maximum(a, b))),
                    earliest_start=int(rng.integers(0, 30)),
                    latest_start=int(rng.integers(0, 30)) + 35,
                )
            )
        n_del = int(rng.integers(0, min(3, len(live)) + 1))
        deletes = [live.pop(int(rng.integers(len(live)))) for _ in range(n_del)]
        live.extend(inserts)
        for p in (scalar, packed):
            p.submit_inserts(inserts)
            p.submit_deletes(deletes)
            p.run()
        assert _pool_summary(scalar) == _pool_summary(packed)  # bit-exact


# ----------------------------------------------------------------------
# error semantics parity
# ----------------------------------------------------------------------
class TestPackedErrorSemantics:
    def _pipe(self):
        return make_pipeline(AggregationParameters(0, 0), engine="packed")

    def test_double_insert_raises(self):
        pipe = self._pipe()
        fo = flex_offer([(1, 2)], earliest_start=0, latest_start=4)
        pipe.submit_inserts([fo])
        pipe.run()
        pipe.submit_inserts([fo])
        with pytest.raises(AggregationError):
            pipe.run()

    def test_delete_unknown_raises(self):
        pipe = self._pipe()
        with pytest.raises(AggregationError):
            pipe.submit_deletes([flex_offer([(1, 2)], earliest_start=0, latest_start=4)])
            pipe.run()

    def test_insert_and_delete_same_flush_emits_nothing(self):
        pipe = self._pipe()
        fo = flex_offer([(1, 2)], earliest_start=0, latest_start=4)
        pipe.submit_inserts([fo])
        pipe.submit_deletes([fo])
        assert pipe.run() == []
        assert pipe.input_count == 0


# ----------------------------------------------------------------------
# packed pool mechanics
# ----------------------------------------------------------------------
class TestPackedPool:
    def test_insert_remove_roundtrip(self):
        pool = PackedPool(capacity=2)
        offers = [
            flex_offer([(1, 2)] * (i % 3 + 1), earliest_start=i, latest_start=i + 4)
            for i in range(10)
        ]
        rows = pool.insert_batch(offers)
        assert pool.live == 10
        assert list(pool.est[rows]) == [o.earliest_start for o in offers]
        idx = pool.slice_indices(rows[:2])
        assert len(idx) == offers[0].duration + offers[1].duration
        pool.remove_batch([offers[0].offer_id, offers[3].offer_id])
        assert pool.live == 8
        assert offers[0].offer_id not in pool
        with pytest.raises(AggregationError):
            pool.remove_batch([offers[0].offer_id])

    def test_compaction_preserves_live_rows(self):
        pool = PackedPool(capacity=2)
        keep, drop = [], []
        for i in range(1200):
            offer = flex_offer(
                [(float(i), float(i) + 1.0)] * 6,
                earliest_start=i % 50,
                latest_start=i % 50 + 3,
            )
            (keep if i % 3 == 0 else drop).append(offer)
        pool.insert_batch(keep[:100] + drop)
        pool.insert_batch(keep[100:])
        pool.remove_batch([o.offer_id for o in drop])
        assert pool.maybe_compact()
        assert pool.live == len(keep) == pool.size
        assert pool.dead_slices == 0
        for offer in keep:
            row = pool.row_of(offer.offer_id)
            assert pool.offer_at(row) is offer
            assert pool.est[row] == offer.earliest_start
            start = pool.offset[row]
            got = pool.slice_lo[start : start + pool.dur[row]]
            assert got.tolist() == list(offer.profile.min_energies())

    def test_group_state_tracks_est_and_end_through_removals(self):
        from repro.aggregation import GroupArena

        arena = GroupArena()
        early = flex_offer([(1, 1)] * 2, earliest_start=5, latest_start=9)
        late = flex_offer([(2, 3)] * 6, earliest_start=8, latest_start=12)
        state = GroupProfileState()
        state.insert_members(arena, [early, late])
        assert (state.est, state.end) == (5, 14)
        state.remove_members(arena, [early])
        assert (state.est, state.end) == (8, 14)
        members, est, lo, hi = state.snapshot(arena)
        assert members == (late,)
        assert est == 8
        assert lo.tolist() == [2.0] * 6
        assert hi.tolist() == [3.0] * 6


# ----------------------------------------------------------------------
# live scalar state: subtract-based removal equals the rebuild oracle
# ----------------------------------------------------------------------
def test_scalar_group_state_removal_matches_reference():
    rng = np.random.default_rng(11)
    for _ in range(50):
        offers = [_random_offer(rng) for _ in range(int(rng.integers(2, 8)))]
        from repro.aggregation.aggregator import _GroupState

        state = _GroupState()
        for offer in offers:
            state.add(offer)
        removed = offers.pop(int(rng.integers(len(offers))))
        state.remove(removed.offer_id)
        got = state.build(offer_id=1)
        want = reference_aggregate_group(offers, offer_id=1)
        assert _aggregate_summary(got)[:-2] == _aggregate_summary(want)[:-2]
        assert got.profile == want.profile


# ----------------------------------------------------------------------
# profile caching (satellite)
# ----------------------------------------------------------------------
class TestProfileCaches:
    def test_tuples_cached(self):
        profile = Profile.from_bounds([(1.0, 2.0), (3.0, 4.0)])
        assert profile.min_energies() is profile.min_energies()
        assert profile.max_energies() is profile.max_energies()
        assert profile.min_energies() == (1.0, 3.0)

    def test_arrays_cached_and_readonly(self):
        profile = Profile.from_bounds([(1.0, 2.0), (3.0, 4.0)])
        assert profile.min_array is profile.min_array
        assert not profile.min_array.flags.writeable
        assert profile.max_array.tolist() == [2.0, 4.0]

    def test_flexoffer_delegates(self):
        fo = flex_offer([(1, 2), (3, 4)], earliest_start=0, latest_start=2)
        assert fo.min_array is fo.profile.min_array
        assert fo.max_array.tolist() == [2.0, 4.0]


# ----------------------------------------------------------------------
# sharded ingest: K-shard merge equals the single pipeline
# ----------------------------------------------------------------------
class TestShardedIngest:
    def _offers(self, n, seed=3):
        rng = np.random.default_rng(seed)
        return [_random_offer(rng) for _ in range(n)]

    def test_merge_equals_single_pipeline(self):
        parameters = AggregationParameters(4, 4, name="shard")
        single = FlexOfferIngest(
            make_pipeline(parameters, engine="packed"), batch_size=8
        )
        sharded = ShardedFlexOfferIngest(
            parameters, shards=4, engine="packed", batch_size=8
        )
        offers = self._offers(60)
        accepted = []
        for offer in offers:
            a = single.submit(offer, now=0)
            b = sharded.submit(offer, now=0)
            assert (a is None) == (b is None)
            if a is not None:
                accepted.append(a)
        single_updates = single.flush(0)
        sharded_updates = sharded.flush(0)
        assert _updates_summary(single_updates) == _updates_summary(sharded_updates)
        assert single.input_count == sharded.input_count == len(accepted)

        retire = accepted[::3]
        single.retire(retire, 0, "expired")
        sharded.retire(retire, 0, "expired")
        assert _updates_summary(single.flush(0)) == _updates_summary(sharded.flush(0))
        assert single.input_count == sharded.input_count

    def test_flush_merges_shard_dirty_sets(self):
        parameters = AggregationParameters(4, 4, name="shard")
        sharded = ShardedFlexOfferIngest(
            parameters, shards=4, engine="packed", batch_size=8
        )
        offers = [
            offer
            for offer in self._offers(40)
            if sharded.submit(offer, now=0) is not None
        ]
        updates = sharded.flush(0)
        assert sharded.last_dirty.created == {u.group_id for u in updates}
        assert not sharded.last_dirty.changed
        assert not sharded.last_dirty.deleted
        sharded.retire(offers, 0, "expired")
        updates = sharded.flush(0)
        assert sharded.last_dirty.deleted == {u.group_id for u in updates}

    def test_clipped_offer_retires_from_its_true_home_shard(self):
        """Admission-clipped offers must retire where submit routed them.

        Submit routes by the *clipped* cell; an offer whose window was
        clipped on entry hashes to a different cell unclipped.  When the
        routing table cannot answer (the regression: the fallback re-hashed
        the unclipped offer), the delete must still land on the shard that
        actually holds the offer — membership lookup, never a guessed hash.
        """
        parameters = AggregationParameters(4, 4, name="shard")
        sharded = ShardedFlexOfferIngest(
            parameters, shards=4, engine="packed", batch_size=4
        )
        now = 9
        offer = next(
            o
            for tf in range(6, 40)
            for o in [
                flex_offer(
                    [(1.0, 2.0)] * 2, earliest_start=0, latest_start=tf
                )
            ]
            if sharded.shard_of(o) != sharded.shard_of(o, now)
        )
        accepted = sharded.submit(offer, now)
        assert accepted.earliest_start == now  # clip applied at admission
        sharded.flush(now)
        assert sharded.contains(accepted.offer_id)

        # Drop the routing entry, then retire via the *original* unclipped
        # object — the path that used to re-hash onto the wrong shard and
        # leave a ghost member behind.
        del sharded._shard_of_offer[accepted.offer_id]
        assert sharded.retire([offer], now, "expired") == 1
        sharded.flush(now)
        assert sharded.input_count == 0
        assert not sharded.contains(accepted.offer_id)

    def test_retire_unknown_offer_is_skipped_not_guessed(self):
        parameters = AggregationParameters(4, 4, name="shard")
        sharded = ShardedFlexOfferIngest(parameters, shards=4, batch_size=4)
        stranger = flex_offer(
            [(1.0, 2.0)] * 2, earliest_start=0, latest_start=8
        )
        assert sharded.retire([stranger], 0, "expired") == 0
        assert sharded.metrics.counter("ingest.retire_unknown").value == 1
        assert sharded.flush(0) == []

    def test_shard_group_spaces_are_disjoint(self):
        parameters = AggregationParameters(2, 2, name="disjoint")
        sharded = ShardedFlexOfferIngest(parameters, shards=4, batch_size=4)
        for offer in self._offers(80, seed=9):
            sharded.submit(offer, now=0)
        sharded.flush(0)
        seen: dict[str, int] = {}
        for index, shard in enumerate(sharded.shards):
            for update in shard.pipeline._states:
                assert update not in seen, (update, index)
                seen[update] = index
        assert len({v for v in seen.values()}) > 1  # actually spread out

    def test_runtime_service_equivalent_across_engines_and_shards(self):
        # The full service loop must behave identically (simulated-time
        # semantics) whether aggregation runs scalar, packed, or packed over
        # four hash-routed shards.
        from repro.runtime import BrpRuntimeService, LoadGenerator, RuntimeConfig

        reports = []
        for engine, shards in (("scalar", 1), ("packed", 1), ("packed", 4)):
            service = BrpRuntimeService(
                RuntimeConfig(batch_size=16, seed=5, engine=engine, shards=shards)
            )
            generator = LoadGenerator(rate_per_hour=40.0, seed=5)
            reports.append(service.run_stream(generator.stream(0.0, 96.0), 96.0))
        baseline = reports[0]
        for report in reports[1:]:
            assert report.offers_accepted == baseline.offers_accepted
            assert report.offers_scheduled == baseline.offers_scheduled
            assert report.offers_expired == baseline.offers_expired
            assert report.pool_aggregates == baseline.pool_aggregates
            assert report.pool_offers == baseline.pool_offers
            assert report.latency_slices_p50 == baseline.latency_slices_p50
            assert report.latency_slices_p95 == baseline.latency_slices_p95

    def test_routing_matches_for_clipped_offers(self):
        # An offer whose earliest start passed is clipped on admission; the
        # retire of the accepted offer must hash to the same shard.
        parameters = AggregationParameters(0, 0, name="clip")
        sharded = ShardedFlexOfferIngest(parameters, shards=4, batch_size=2)
        offer = flex_offer([(1, 2)] * 2, earliest_start=0, latest_start=20)
        accepted = sharded.submit(offer, now=5)
        assert accepted.earliest_start == 5
        sharded.flush(5)
        assert sharded.input_count == 1
        sharded.retire([accepted], 6, "expired")
        sharded.flush(6)
        assert sharded.input_count == 0
