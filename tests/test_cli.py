"""CLI: registry-validated names, --config file merging, exit codes.

Drives ``repro.__main__.main`` in-process with tiny deterministic
workloads, so the whole file runs in a couple of seconds.
"""

import json

import pytest

from repro.__main__ import EXIT_OK, EXIT_UNKNOWN_EXPERIMENT, main

TINY = ["--rate", "20", "--duration", "12", "--seed", "1", "--batch", "8",
        "--passes", "1"]


def test_loadtest_runs(capsys):
    assert main(["loadtest", *TINY]) == EXIT_OK
    out = capsys.readouterr().out
    assert "offers accepted" in out
    assert "driver=simulated" in out


def test_unknown_engine_exits_2_with_known_names(capsys):
    assert main(["loadtest", "--engine", "bogus"]) == EXIT_UNKNOWN_EXPERIMENT
    err = capsys.readouterr().err
    for name in ("packed", "reference", "scalar"):
        assert name in err


def test_unknown_driver_exits_2_with_known_names(capsys):
    assert main(["loadtest", "--driver", "bogus"]) == EXIT_UNKNOWN_EXPERIMENT
    err = capsys.readouterr().err
    assert "simulated" in err and "wallclock" in err


def test_unknown_scheduler_exits_2(capsys):
    assert main(["loadtest", "--scheduler", "bogus"]) == EXIT_UNKNOWN_EXPERIMENT
    assert "greedy" in capsys.readouterr().err


def test_scheduler_without_runtime_capability_exits_2(capsys):
    # Registered, but not usable by the streaming loop.
    assert (
        main(["loadtest", *TINY, "--scheduler", "evolutionary"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "runtime" in capsys.readouterr().err


def test_config_file_supplies_defaults(tmp_path, capsys):
    config = tmp_path / "run.json"
    config.write_text(json.dumps({
        "rate": 20, "duration": 12, "seed": 1, "batch": 8, "passes": 1,
    }))
    assert main(["loadtest", "--config", str(config)]) == EXIT_OK
    assert "rate=20" in capsys.readouterr().out


def test_explicit_flags_beat_config_file(tmp_path, capsys):
    config = tmp_path / "run.json"
    config.write_text(json.dumps({
        "rate": 999, "duration": 12, "seed": 1, "batch": 8, "passes": 1,
    }))
    assert (
        main(["loadtest", "--config", str(config), "--rate", "20"]) == EXIT_OK
    )
    out = capsys.readouterr().out
    assert "rate=20" in out and "rate=999" not in out


def test_config_file_unknown_key_exits_2(tmp_path, capsys):
    config = tmp_path / "run.json"
    config.write_text(json.dumps({"warp_speed": 9}))
    assert main(["loadtest", "--config", str(config)]) == EXIT_UNKNOWN_EXPERIMENT
    err = capsys.readouterr().err
    assert "warp_speed" in err and "known keys" in err


def test_config_file_engine_validated_through_registry(tmp_path, capsys):
    # Names arriving via the file bypass argparse; the registry check must
    # still catch them.
    config = tmp_path / "run.json"
    config.write_text(json.dumps({"engine": "bogus"}))
    assert main(["loadtest", "--config", str(config)]) == EXIT_UNKNOWN_EXPERIMENT
    assert "known aggregation names" in capsys.readouterr().err


def test_config_file_unreadable_or_invalid_exits_2(tmp_path, capsys):
    assert (
        main(["loadtest", "--config", str(tmp_path / "absent.json")])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    assert main(["loadtest", "--config", str(bad)]) == EXIT_UNKNOWN_EXPERIMENT


def test_serve_accepts_config_with_report_every(tmp_path, capsys):
    config = tmp_path / "serve.json"
    config.write_text(json.dumps({
        "rate": 20, "duration": 12, "seed": 1, "batch": 8, "passes": 1,
        "report_every": 6,
    }))
    assert main(["serve", "--config", str(config)]) == EXIT_OK
    assert "[t=" in capsys.readouterr().out  # progress lines appeared


def test_unknown_experiment_still_exits_2(capsys):
    assert main(["no-such-experiment"]) == EXIT_UNKNOWN_EXPERIMENT


def test_loadtest_cluster_mode_runs(capsys):
    assert main(["loadtest", *TINY, "--brps", "2"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "cluster of 2 BRPs + TSO" in out
    assert "TSO runs" in out
    assert "remote commits" in out


def test_serve_cluster_file_runs(tmp_path, capsys):
    cluster = tmp_path / "cluster.json"
    cluster.write_text(json.dumps({
        "brps": {"north": {}, "south": {}},
        "tso": {"trigger_refreshes": 1, "scheduler_passes": 1},
    }))
    assert (
        main(["serve", *TINY, "--cluster", str(cluster), "--report-every", "6"])
        == EXIT_OK
    )
    out = capsys.readouterr().out
    assert "north" in out and "south" in out
    assert "[t=" in out  # progress lines appeared


def test_cluster_and_brps_flags_are_mutually_exclusive(tmp_path, capsys):
    cluster = tmp_path / "cluster.json"
    cluster.write_text(json.dumps({"brps": 2}))
    assert (
        main(["loadtest", *TINY, "--cluster", str(cluster), "--brps", "3"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "mutually exclusive" in capsys.readouterr().err


def test_cluster_file_validated_exits_2(tmp_path, capsys):
    bad = tmp_path / "cluster.json"
    bad.write_text(json.dumps({"brps": 2, "tso": {"scheduler": "bogus"}}))
    assert main(["loadtest", *TINY, "--cluster", str(bad)]) == EXIT_UNKNOWN_EXPERIMENT
    assert "invalid loadtest configuration" in capsys.readouterr().err


def test_nonpositive_brps_exits_2(capsys):
    assert main(["loadtest", *TINY, "--brps", "0"]) == EXIT_UNKNOWN_EXPERIMENT
    assert "--brps must be positive" in capsys.readouterr().err


# ----------------------------------------------------------------------
# durability + fault-injection flags
# ----------------------------------------------------------------------
def test_ledger_flag_journals_the_run(tmp_path, capsys):
    led = tmp_path / "led"
    assert main(["loadtest", *TINY, "--ledger", str(led)]) == EXIT_OK
    segments = list(led.glob("segment-*.jsonl"))
    assert segments and segments[0].stat().st_size > 0


def test_cluster_ledger_uses_per_brp_subdirs(tmp_path, capsys):
    led = tmp_path / "led"
    assert (
        main(["loadtest", *TINY, "--brps", "2", "--ledger", str(led)])
        == EXIT_OK
    )
    assert sorted(p.name for p in led.iterdir()) == ["brp-0", "brp-1"]
    assert list((led / "brp-0").glob("segment-*.jsonl"))


def test_hostile_stream_flags_run(tmp_path, capsys):
    assert (
        main([
            "loadtest", *TINY, "--ledger", str(tmp_path / "led"),
            "--duplicate-rate", "0.2", "--reorder-window", "4",
        ])
        == EXIT_OK
    )
    assert "offers accepted" in capsys.readouterr().out


def test_outage_flag_runs_in_cluster_mode(capsys):
    assert (
        main(["loadtest", *TINY, "--brps", "2", "--outage", "brp-1:2:6"])
        == EXIT_OK
    )


def test_bad_duplicate_rate_exits_2(capsys):
    assert (
        main(["loadtest", *TINY, "--duplicate-rate", "1.5"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "--duplicate-rate" in capsys.readouterr().err


def test_bad_reorder_window_exits_2(capsys):
    assert (
        main(["loadtest", *TINY, "--reorder-window", "-1"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "--reorder-window" in capsys.readouterr().err


def test_bad_fsync_mode_exits_2(capsys):
    assert (
        main(["loadtest", *TINY, "--ledger", "led", "--fsync", "sometimes"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    err = capsys.readouterr().err
    assert "commit" in err and "never" in err


def test_malformed_outage_spec_exits_2(capsys):
    assert (
        main(["loadtest", *TINY, "--brps", "2", "--outage", "nonsense"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "outage spec" in capsys.readouterr().err


def test_outage_unknown_brp_exits_2(capsys):
    assert (
        main(["loadtest", *TINY, "--brps", "2", "--outage", "brp-9:1:2"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "unknown BRP" in capsys.readouterr().err


def test_outage_without_cluster_exits_2(capsys):
    assert (
        main(["loadtest", *TINY, "--outage", "brp-0:1:2"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "cluster mode" in capsys.readouterr().err


def test_bus_retries_enables_resilient_cluster_bus(capsys):
    assert (
        main(
            [
                "loadtest",
                "--rate", "20", "--duration", "24", "--seed", "1",
                "--batch", "8", "--passes", "1",
                "--brps", "2",
                "--outage", "brp-1:4:16",
                "--bus-retries", "2",
            ]
        )
        == EXIT_OK
    )
    out = capsys.readouterr().out
    assert "bus resilience" in out  # retry path engaged, not best-effort drop


def test_negative_bus_retries_exits_2(capsys):
    assert (
        main(["loadtest", *TINY, "--bus-retries", "-1"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "--bus-retries" in capsys.readouterr().err


def test_unknown_trigger_kind_exits_2_with_known_names(capsys):
    assert (
        main(["loadtest", *TINY, "--trigger", "bogus"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    err = capsys.readouterr().err
    assert "unknown trigger" in err
    assert "adaptive" in err and "count" in err


def test_bad_trigger_param_exits_2(capsys):
    assert (
        main(
            ["loadtest", *TINY, "--trigger", "adaptive:target_p95_slices=-3"]
        )
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "target_p95_slices must be positive" in capsys.readouterr().err


def test_malformed_trigger_spec_exits_2(capsys):
    assert (
        main(["loadtest", *TINY, "--trigger", "count:threshold"])
        == EXIT_UNKNOWN_EXPERIMENT
    )
    assert "expected 'kind:key=val" in capsys.readouterr().err


def test_trigger_specs_compose(capsys):
    assert (
        main(
            [
                "loadtest", *TINY,
                "--trigger", "count:threshold=5",
                "--trigger", "age:max_age_slices=4",
            ]
        )
        == EXIT_OK
    )


def test_delta_scheduler_loadtest_runs(capsys):
    assert main(["loadtest", *TINY, "--scheduler", "delta"]) == EXIT_OK
    assert "offers" in capsys.readouterr().out


def test_adaptive_target_flag_accepted(capsys):
    assert (
        main(["loadtest", *TINY, "--target-p95-slices", "6"]) == EXIT_OK
    )
    assert main(
        ["loadtest", *TINY, "--target-p95-slices", "6", "--brps", "2"]
    ) == EXIT_OK


def test_list_shows_registry_catalogue(capsys):
    assert main(["--list"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "scheduler" in out and "delta" in out
    assert "trigger" in out and "adaptive" in out
