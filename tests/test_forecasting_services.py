"""Tests for maintenance, pub/sub queries, context adaptation, hierarchy and
flex-offer forecasting."""

import numpy as np
import pytest

from repro.core import TimeSeries, flex_offer
from repro.core.errors import ForecastingError
from repro.datagen import uk_style_demand
from repro.datagen.demand import HALF_HOURLY
from repro.forecasting import (
    ConfigurationAdvisor,
    ContextAwareAdaptation,
    ContextRepository,
    EstimationBudget,
    FlexOfferForecaster,
    FlexOfferSeries,
    ForecastPublisher,
    HierarchyNode,
    HoltWintersTaylor,
    ModelMaintainer,
    NaiveModel,
    NodeMode,
    RandomSearch,
    SeasonalNaiveModel,
    ThresholdBasedEvaluation,
    TimeBasedEvaluation,
    series_context,
)

PER_DAY = HALF_HOURLY.slices_per_day


@pytest.fixture(scope="module")
def demand():
    return uk_style_demand(42)


@pytest.fixture(scope="module")
def train_test(demand):
    return demand.split(demand.start + 35 * PER_DAY)


class TestEvaluationStrategies:
    def test_time_based_fires_on_interval(self):
        strategy = TimeBasedEvaluation(3)
        assert [strategy.observe(0.0) for _ in range(3)] == [False, False, True]
        strategy.reset()
        assert strategy.observe(0.0) is False

    def test_time_based_rejects_bad_interval(self):
        with pytest.raises(ForecastingError):
            TimeBasedEvaluation(0)

    def test_threshold_needs_full_window(self):
        strategy = ThresholdBasedEvaluation(0.1, window=5)
        for _ in range(4):
            assert strategy.observe(0.9) is False  # window not yet full
        assert strategy.observe(0.9) is True

    def test_threshold_quiet_when_accurate(self):
        strategy = ThresholdBasedEvaluation(0.5, window=3)
        assert not any(strategy.observe(0.01) for _ in range(20))

    def test_rolling_error_tracks_mean(self):
        strategy = ThresholdBasedEvaluation(0.5, window=4)
        for term in (0.1, 0.2, 0.3, 0.4):
            strategy.observe(term)
        assert strategy.rolling_error == pytest.approx(0.25)


class TestModelMaintainer:
    def test_requires_fitted_model(self):
        with pytest.raises(ForecastingError):
            ModelMaintainer(
                HoltWintersTaylor((48, 336)),
                RandomSearch(),
                TimeBasedEvaluation(10),
            )

    def test_time_based_reestimation_count(self, train_test):
        train, test = train_test
        model = HoltWintersTaylor((48, 336)).fit(train)
        maintainer = ModelMaintainer(
            model,
            RandomSearch(),
            TimeBasedEvaluation(PER_DAY),
            budget=EstimationBudget.of_evaluations(3),
            history=train,
        )
        reestimations = maintainer.observe_series(test.first(3 * PER_DAY))
        assert reestimations == 3
        assert maintainer.report.observations == 3 * PER_DAY
        assert maintainer.report.reestimations == 3

    def test_model_stays_usable_after_maintenance(self, train_test):
        train, test = train_test
        model = HoltWintersTaylor((48, 336)).fit(train)
        maintainer = ModelMaintainer(
            model,
            RandomSearch(),
            TimeBasedEvaluation(PER_DAY),
            budget=EstimationBudget.of_evaluations(2),
            history=train,
        )
        maintainer.observe_series(test.first(PER_DAY))
        forecast = model.forecast(10)
        assert np.isfinite(forecast.values).all()


class TestForecastPublisher:
    def test_initial_delivery_on_subscribe(self, train_test):
        train, _ = train_test
        publisher = ForecastPublisher(HoltWintersTaylor((48, 336)).fit(train))
        received = []
        sub = publisher.subscribe("sched", PER_DAY, 0.05, received.append)
        assert sub.notifications == 1
        assert len(received) == 1

    def test_small_changes_suppressed(self, train_test):
        """A tight threshold notifies often, a loose one rarely."""
        train, test = train_test
        stream = test.first(2 * PER_DAY)

        def run(threshold):
            publisher = ForecastPublisher(
                HoltWintersTaylor((48, 336)).fit(train)
            )
            sub = publisher.subscribe("s", PER_DAY, threshold)
            publisher.on_series(stream)
            return sub.notifications

        assert run(0.50) < run(0.005) <= len(stream) + 1

    def test_unsubscribe(self, train_test):
        train, _ = train_test
        publisher = ForecastPublisher(HoltWintersTaylor((48, 336)).fit(train))
        sub = publisher.subscribe("s", 10, 0.0)
        publisher.unsubscribe(sub)
        assert publisher.subscriptions == ()

    def test_invalid_subscription(self, train_test):
        train, _ = train_test
        publisher = ForecastPublisher(HoltWintersTaylor((48, 336)).fit(train))
        with pytest.raises(ForecastingError):
            publisher.subscribe("s", 0, 0.1)
        with pytest.raises(ForecastingError):
            publisher.subscribe("s", 5, -0.1)


class TestContext:
    def test_series_context_features(self, demand):
        ctx = series_context(demand.first(4 * PER_DAY), season_length=PER_DAY)
        assert ctx.shape == (4,)
        assert ctx[0] > 0  # mean level of demand
        assert ctx[2] > 0.5  # strong daily seasonality

    def test_repository_nearest_prefers_similar(self):
        repo = ContextRepository()
        repo.store(np.array([1.0, 0.0]), np.array([0.1]), 0.05)
        repo.store(np.array([100.0, 1.0]), np.array([0.9]), 0.01)
        nearest = repo.nearest(np.array([2.0, 0.0]))
        assert nearest[0].params[0] == pytest.approx(0.1)

    def test_repository_empty_nearest(self):
        assert ContextRepository().nearest(np.array([0.0])) == []

    def test_adaptation_stores_cases_and_fits(self, train_test):
        train, _ = train_test
        adaptation = ContextAwareAdaptation(RandomSearch())
        model = HoltWintersTaylor((48, 336))
        result = adaptation.adapt(
            model, train, EstimationBudget.of_evaluations(5),
            rng=np.random.default_rng(0),
        )
        assert len(adaptation.repository) == 1
        assert model.is_fitted
        assert result.error < 0.5

    def test_warm_start_from_repository_helps(self, train_test):
        """With a stored near-optimal case, one evaluation suffices."""
        train, _ = train_test
        model = HoltWintersTaylor((48, 336))
        good = RandomSearch().estimate(
            lambda p: model.insample_error(train, p),
            model.parameter_space,
            EstimationBudget.of_evaluations(40),
            rng=np.random.default_rng(1),
        )
        repo = ContextRepository()
        repo.store(series_context(train), good.params, good.error)
        adaptation = ContextAwareAdaptation(RandomSearch(), repo)
        result = adaptation.adapt(
            model, train, EstimationBudget.of_evaluations(2),
            rng=np.random.default_rng(2),
        )
        assert result.error <= good.error + 1e-12


def _hierarchy(demand):
    """Two BRPs under one TSO; parent = sum of children."""
    a = demand * 0.6
    b = demand * 0.4
    root = HierarchyNode("tso", a + b, [HierarchyNode("brp-a", a), HierarchyNode("brp-b", b)])
    return root


class TestHierarchy:
    def test_consistency_validation(self, demand):
        root = _hierarchy(demand)
        root.validate_consistency()
        broken = HierarchyNode(
            "tso", demand * 2.0, [HierarchyNode("x", demand)]
        )
        with pytest.raises(ForecastingError):
            broken.validate_consistency()

    def test_walk_order(self, demand):
        root = _hierarchy(demand)
        assert [n.name for n in root.walk()] == ["tso", "brp-a", "brp-b"]

    def test_evaluate_requires_leaf_models(self, demand):
        root = _hierarchy(demand)
        advisor = ConfigurationAdvisor(lambda: SeasonalNaiveModel(PER_DAY), PER_DAY)
        with pytest.raises(ForecastingError):
            advisor.evaluate(
                root,
                {"tso": NodeMode.OWN_MODEL, "brp-a": NodeMode.AGGREGATE,
                 "brp-b": NodeMode.OWN_MODEL},
            )

    def test_aggregate_equals_sum_of_child_forecasts(self, demand):
        root = _hierarchy(demand)
        advisor = ConfigurationAdvisor(lambda: SeasonalNaiveModel(PER_DAY), PER_DAY)
        config = advisor.evaluate(
            root,
            {"tso": NodeMode.AGGREGATE, "brp-a": NodeMode.OWN_MODEL,
             "brp-b": NodeMode.OWN_MODEL},
        )
        # children scale the same series, so aggregate == own model here
        assert config.model_count == 2
        assert np.isfinite(config.root_error)

    def test_advise_enumerates_and_respects_model_budget(self, demand):
        root = _hierarchy(demand)
        advisor = ConfigurationAdvisor(lambda: SeasonalNaiveModel(PER_DAY), PER_DAY)
        best = advisor.advise(root, max_models=2)
        assert best.model_count <= 2
        assert best.modes["tso"] == NodeMode.AGGREGATE


class TestFlexOfferForecasting:
    def _offers(self):
        offers = []
        for day in range(14):
            for hour_slot in (36, 40):  # two evening issue slots (30-min axis)
                for _ in range(3):
                    est = day * PER_DAY + hour_slot
                    offers.append(
                        flex_offer(
                            [(1.0, 2.0)] * 4,
                            earliest_start=est,
                            latest_start=est + 8,
                        )
                    )
        return offers

    def test_decompose_counts(self):
        offers = self._offers()
        series = FlexOfferSeries.decompose(offers, 0, 14 * PER_DAY)
        assert series.count.total() == len(offers)
        assert series.count.at(36) == 3
        assert series.time_flexibility.at(36) == 8
        assert series.duration.at(36) == 4

    def test_decompose_window_filter(self):
        offers = self._offers()
        series = FlexOfferSeries.decompose(offers, 0, PER_DAY)  # first day only
        assert series.count.total() == 6

    def test_decompose_rejects_empty_window(self):
        with pytest.raises(ForecastingError):
            FlexOfferSeries.decompose([], 5, 5)

    def test_forecast_offers_recompose(self):
        offers = self._offers()
        series = FlexOfferSeries.decompose(offers, 0, 14 * PER_DAY)
        forecaster = FlexOfferForecaster(lambda: SeasonalNaiveModel(PER_DAY)).fit(series)
        predicted = forecaster.forecast_offers(PER_DAY)
        # the daily pattern has two issue slots; expect offers at both
        starts = {o.earliest_start % PER_DAY for o in predicted}
        assert starts == {36, 40}
        for offer in predicted:
            assert offer.duration == 4
            assert offer.time_flexibility == 8
            assert offer.total_max_energy > offer.total_min_energy

    def test_forecast_requires_fit(self):
        forecaster = FlexOfferForecaster(NaiveModel)
        with pytest.raises(ForecastingError):
            forecaster.forecast_components(5)


class TestFallbackModel:
    """The paper's EGRV→HWT fallback rule."""

    def _factories(self):
        from repro.forecasting import EGRVModel, FallbackModel

        primary = lambda: EGRVModel(HALF_HOURLY)
        fallback = lambda: HoltWintersTaylor((48, 336))
        return primary, fallback

    def test_keeps_accurate_primary(self, demand):
        from repro.forecasting import FallbackModel

        primary, fallback = self._factories()
        model = FallbackModel(primary, fallback, validation_slices=PER_DAY)
        model.fit(demand.first(28 * PER_DAY))
        # on well-behaved demand, EGRV is accurate: no fallback
        assert not model.used_fallback
        assert model.is_fitted
        assert len(model.forecast(10)) == 10

    def test_falls_back_when_primary_fails(self, demand):
        from repro.forecasting import FallbackModel, NaiveModel

        class Exploding(NaiveModel):
            def forecast(self, horizon):
                forecast = super().forecast(horizon)
                return type(forecast)(forecast.start, forecast.values * np.inf)

        model = FallbackModel(
            Exploding, lambda: HoltWintersTaylor((48, 336)),
            validation_slices=PER_DAY,
        )
        model.fit(demand.first(28 * PER_DAY))
        assert model.used_fallback
        assert np.isfinite(model.forecast(5).values).all()

    def test_validation_errors_reported(self, demand):
        from repro.forecasting import FallbackModel

        primary, fallback = self._factories()
        model = FallbackModel(primary, fallback, validation_slices=PER_DAY)
        model.fit(demand.first(28 * PER_DAY))
        errors = model.validation_errors
        assert set(errors) == {"primary", "fallback"}
        assert all(e >= 0 for e in errors.values())

    def test_tolerance_prefers_primary_on_narrow_loss(self, demand):
        from repro.forecasting import FallbackModel, SeasonalNaiveModel

        # two similar candidates: generous tolerance keeps the primary
        model = FallbackModel(
            lambda: SeasonalNaiveModel(PER_DAY),
            lambda: SeasonalNaiveModel(7 * PER_DAY),
            validation_slices=PER_DAY,
            tolerance=10.0,
        )
        model.fit(demand.first(28 * PER_DAY))
        assert not model.used_fallback

    def test_requires_enough_history(self):
        from repro.forecasting import FallbackModel, NaiveModel

        model = FallbackModel(NaiveModel, NaiveModel, validation_slices=10)
        with pytest.raises(ForecastingError):
            model.fit(TimeSeries(0, np.ones(5)))

    def test_update_delegates_to_active(self, demand):
        from repro.forecasting import FallbackModel, NaiveModel

        model = FallbackModel(NaiveModel, NaiveModel, validation_slices=5)
        model.fit(demand.first(PER_DAY))
        error = model.update(float(demand.values[PER_DAY]))
        assert np.isfinite(error)

    def test_invalid_configuration(self):
        from repro.forecasting import FallbackModel, NaiveModel

        with pytest.raises(ForecastingError):
            FallbackModel(NaiveModel, NaiveModel, validation_slices=0)
        with pytest.raises(ForecastingError):
            FallbackModel(NaiveModel, NaiveModel, tolerance=-1)
