"""Unit tests for the slice-indexed time-series substrate."""

import numpy as np
import pytest

from repro.core import TimeSeries, TimeSeriesError, align_union, zeros


class TestConstruction:
    def test_basic(self):
        ts = TimeSeries(5, [1, 2, 3])
        assert ts.start == 5
        assert ts.end == 8
        assert len(ts) == 3

    def test_rejects_2d_values(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(0, [[1, 2], [3, 4]])

    def test_zeros(self):
        ts = zeros(3, 4)
        assert ts.start == 3 and len(ts) == 4
        assert ts.total() == 0

    def test_values_are_float64(self):
        assert TimeSeries(0, [1, 2]).values.dtype == np.float64


class TestAccess:
    def test_at_absolute_index(self):
        ts = TimeSeries(10, [1.0, 2.0, 3.0])
        assert ts.at(10) == 1.0
        assert ts.at(12) == 3.0

    def test_at_out_of_range(self):
        ts = TimeSeries(10, [1.0])
        with pytest.raises(TimeSeriesError):
            ts.at(9)
        with pytest.raises(TimeSeriesError):
            ts.at(11)

    def test_window(self):
        ts = TimeSeries(0, range(10))
        w = ts.window(3, 6)
        assert w.start == 3
        assert list(w.values) == [3, 4, 5]

    def test_window_out_of_cover(self):
        ts = TimeSeries(5, [1, 2])
        with pytest.raises(TimeSeriesError):
            ts.window(4, 6)

    def test_covers(self):
        ts = TimeSeries(5, [1, 2, 3])
        assert ts.covers(5, 8)
        assert ts.covers(6, 7)
        assert not ts.covers(4, 8)
        assert not ts.covers(5, 9)

    def test_first_last_split(self):
        ts = TimeSeries(0, range(6))
        assert list(ts.first(2).values) == [0, 1]
        last = ts.last(2)
        assert last.start == 4 and list(last.values) == [4, 5]
        a, b = ts.split(4)
        assert a.end == 4 and b.start == 4


class TestArithmetic:
    def test_aligned_addition(self):
        s = TimeSeries(2, [1, 2]) + TimeSeries(2, [10, 20])
        assert list(s.values) == [11, 22]
        assert s.start == 2

    def test_misaligned_addition_raises(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(0, [1, 2]) + TimeSeries(1, [1, 2])

    def test_length_mismatch_raises(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(0, [1, 2]) + TimeSeries(0, [1, 2, 3])

    def test_scalar_ops(self):
        ts = TimeSeries(0, [1, 2]) * 2 + 1
        assert list(ts.values) == [3, 5]

    def test_subtraction_and_negation(self):
        d = TimeSeries(0, [3, 3]) - TimeSeries(0, [1, 2])
        assert list(d.values) == [2, 1]
        assert list((-d).values) == [-2, -1]

    def test_equality(self):
        assert TimeSeries(0, [1, 2]) == TimeSeries(0, [1, 2])
        assert TimeSeries(0, [1, 2]) != TimeSeries(1, [1, 2])


class TestTransforms:
    def test_shifted(self):
        ts = TimeSeries(0, [1]).shifted(5)
        assert ts.start == 5

    def test_extended(self):
        ts = TimeSeries(0, [1, 2]).extended(TimeSeries(2, [3]))
        assert list(ts.values) == [1, 2, 3]

    def test_extended_requires_contiguity(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(0, [1, 2]).extended(TimeSeries(3, [3]))

    def test_map(self):
        ts = TimeSeries(0, [1, -2]).map(np.abs)
        assert list(ts.values) == [1, 2]

    def test_resampled_sums_blocks(self):
        ts = TimeSeries(0, [1, 2, 3, 4]).resampled(2)
        assert ts.start == 0
        assert list(ts.values) == [3, 7]

    def test_resampled_start_scaling(self):
        ts = TimeSeries(4, [1, 2]).resampled(2)
        assert ts.start == 2

    def test_resampled_rejects_misaligned_start(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(1, [1, 2]).resampled(2)

    def test_resampled_rejects_partial_blocks(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(0, [1, 2, 3]).resampled(2)


class TestStatistics:
    def test_total_mean_peak(self):
        ts = TimeSeries(0, [1, 2, 3])
        assert ts.total() == 6
        assert ts.mean() == 2
        assert ts.peak() == 3

    def test_absolute(self):
        assert list(TimeSeries(0, [-1, 2]).absolute().values) == [1, 2]


class TestAlignUnion:
    def test_pads_to_union(self):
        a = TimeSeries(0, [1, 1])
        b = TimeSeries(3, [2])
        pa, pb = align_union([a, b])
        assert pa.start == pb.start == 0
        assert len(pa) == len(pb) == 4
        assert list(pa.values) == [1, 1, 0, 0]
        assert list(pb.values) == [0, 0, 0, 2]

    def test_empty_input(self):
        assert align_union([]) == []

    def test_sum_after_align(self):
        parts = align_union([TimeSeries(0, [1]), TimeSeries(2, [5])])
        total = parts[0] + parts[1]
        assert list(total.values) == [1, 0, 5]
