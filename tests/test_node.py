"""Tests for the message bus, devices, nodes and the end-to-end simulation."""

import numpy as np
import pytest

from repro.core import ScheduledFlexOffer, flex_offer
from repro.core.errors import CommunicationError
from repro.core.timebase import DEFAULT_AXIS
from repro.node import (
    BaseLoad,
    EVCharger,
    HierarchySimulation,
    Message,
    MessageBus,
    MessageType,
    MicroCHP,
    ProsumerNode,
    ScenarioConfig,
    SolarPanel,
    WashingMachine,
    default_household,
)

AXIS = DEFAULT_AXIS
PER_DAY = AXIS.slices_per_day


class TestMessageBus:
    def test_fifo_delivery(self):
        bus = MessageBus()
        received = []
        bus.register("a", received.append)
        bus.register("b", lambda m: None)
        bus.send(Message("b", "a", MessageType.MEASUREMENT, 1, 0))
        bus.send(Message("b", "a", MessageType.MEASUREMENT, 2, 0))
        assert bus.pending == 2
        assert bus.dispatch_all() == 2
        assert [m.payload for m in received] == [1, 2]

    def test_unknown_recipient(self):
        bus = MessageBus()
        with pytest.raises(CommunicationError):
            bus.send(Message("x", "ghost", MessageType.MEASUREMENT, 1, 0))

    def test_duplicate_registration(self):
        bus = MessageBus()
        bus.register("a", lambda m: None)
        with pytest.raises(CommunicationError):
            bus.register("a", lambda m: None)

    def test_handlers_can_enqueue_more(self):
        bus = MessageBus()
        log = []

        def relay(message):
            log.append(message.payload)
            if message.payload < 3:
                bus.send(
                    Message("a", "a", MessageType.MEASUREMENT, message.payload + 1, 0)
                )

        bus.register("a", relay)
        bus.send(Message("a", "a", MessageType.MEASUREMENT, 1, 0))
        assert bus.dispatch_all() == 3
        assert log == [1, 2, 3]

    def test_unreachable_nodes_drop_messages(self):
        bus = MessageBus()
        bus.register("a", lambda m: None)
        bus.set_unreachable("a")
        bus.send(Message("x", "a", MessageType.MEASUREMENT, 1, 0))
        # sender must exist too for send() bookkeeping simplicity
        assert bus.dispatch_all() == 0
        assert bus.dropped == 1
        bus.set_unreachable("a", False)
        bus.send(Message("x", "a", MessageType.MEASUREMENT, 1, 0))
        assert bus.dispatch_all() == 1


class TestDevices:
    def test_base_load_positive_with_configured_mean(self):
        rng = np.random.default_rng(0)
        device = BaseLoad(AXIS, mean_kwh_per_day=6.0)
        profile = device.baseline(0, rng)
        assert profile.min() >= 0
        assert profile.sum() == pytest.approx(6.0, rel=0.5)

    def test_solar_produces_at_midday_only(self):
        rng = np.random.default_rng(1)
        profile = SolarPanel(AXIS).baseline(0, rng)
        assert profile.max() <= 0  # production is negative
        assert profile[: PER_DAY // 6].sum() == pytest.approx(0.0, abs=0.05)
        midday = abs(profile[PER_DAY // 2 - 4 : PER_DAY // 2 + 4]).sum()
        assert midday > 0

    def test_ev_offer_fits_overnight_window(self):
        rng = np.random.default_rng(2)
        offers = EVCharger(AXIS, use_probability=1.0).flex_offers(0, rng)
        assert len(offers) == 1
        offer = offers[0]
        per_hour = AXIS.slices_per_hour
        assert offer.earliest_start >= 20 * per_hour
        assert offer.latest_end <= (24 + 7) * per_hour
        assert offer.time_flexibility > 0
        assert offer.total_min_energy > 0  # consumption

    def test_washing_machine_fixed_energy(self):
        rng = np.random.default_rng(3)
        offers = WashingMachine(AXIS, run_probability=1.0).flex_offers(0, rng)
        offer = offers[0]
        assert offer.total_energy_flexibility == pytest.approx(0.0)
        assert offer.total_min_energy == pytest.approx(1.2)

    def test_chp_offers_production(self):
        rng = np.random.default_rng(4)
        offers = MicroCHP(AXIS, run_probability=1.0).flex_offers(0, rng)
        offer = offers[0]
        assert not offer.is_consumption
        assert offer.total_max_energy < 0

    def test_default_household_always_has_base_load(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            devices = default_household(AXIS, rng)
            assert any(isinstance(d, BaseLoad) for d in devices)


class TestProsumerNode:
    def _node(self, devices=None):
        bus = MessageBus()
        bus.register("brp", lambda m: None)
        node = ProsumerNode(
            "p1", AXIS, bus, devices or [EVCharger(AXIS, use_probability=1.0)], "brp"
        )
        return node, bus

    def test_plan_day_submits_offers_and_baseline(self):
        node, bus = self._node()
        node.plan_day(0, 144, np.random.default_rng(0))
        assert len(node.pending) == 1
        assert bus.pending == 2  # measurement + offer
        bus.dispatch_all()
        assert bus.delivered[MessageType.FLEX_OFFER_SUBMIT] == 1

    def test_fallback_execution_when_no_schedule_arrives(self):
        node, _ = self._node()
        node.plan_day(0, 144, np.random.default_rng(0))
        executions = node.executions()
        assert len(executions) == 1
        offer = list(node.pending.values())[0]
        assert executions[0].start == offer.earliest_start
        assert executions[0].energies == offer.profile.max_energies()

    def test_schedule_message_overrides_fallback(self):
        node, _ = self._node()
        node.plan_day(0, 144, np.random.default_rng(0))
        offer = list(node.pending.values())[0]
        scheduled = ScheduledFlexOffer.at_minimum(offer, start=offer.latest_start)
        node.handle_message(
            Message("brp", "p1", MessageType.SCHEDULED_FLEX_OFFER, scheduled, 0)
        )
        assert node.executions()[0].start == offer.latest_start

    def test_production_fallback_runs_at_full_output(self):
        node, _ = self._node([MicroCHP(AXIS, run_probability=1.0)])
        node.plan_day(0, 144, np.random.default_rng(1))
        execution = node.executions()[0]
        offer = list(node.pending.values())[0]
        assert execution.energies == offer.profile.min_energies()

    def test_realized_load_includes_flex(self):
        node, _ = self._node()
        node.plan_day(0, 144, np.random.default_rng(0))
        load = node.realized_load(0, 144)
        assert load.total() > 0

    def test_rejected_offers_do_not_run_or_inflate_realized_load(self):
        """A BRP-rejected offer has no contract: no fallback execution."""
        node, _ = self._node()
        node.plan_day(0, 144, np.random.default_rng(0))
        offer = list(node.pending.values())[0]
        with_fallback = node.realized_load(0, 144).total()
        node.handle_message(
            Message("brp", "p1", MessageType.FLEX_OFFER_REJECT, offer, 0)
        )
        assert offer.offer_id in node.rejected  # the set is consulted...
        assert node.executions() == []  # ...and the fallback is skipped
        rejected_load = node.realized_load(0, 144).total()
        assert rejected_load < with_fallback
        # Only the baseline remains.
        assert rejected_load == pytest.approx(node._baseline.values.sum())

    def test_rejected_offer_leaves_other_executions_intact(self):
        node, _ = self._node(
            [
                EVCharger(AXIS, use_probability=1.0),
                WashingMachine(AXIS, run_probability=1.0),
            ]
        )
        node.plan_day(0, 144, np.random.default_rng(0))
        assert len(node.pending) == 2
        first, second = node.pending.values()
        node.handle_message(
            Message("brp", "p1", MessageType.FLEX_OFFER_REJECT, first, 0)
        )
        executions = node.executions()
        assert len(executions) == 1
        assert executions[0].offer.offer_id == second.offer_id

    def test_plan_day_with_horizon_shorter_than_a_day(self):
        """A horizon below slices_per_day keeps the overlapping baseline."""
        node, bus = self._node()
        horizon = PER_DAY // 2
        node.plan_day(0, horizon, np.random.default_rng(0))  # must not raise
        assert len(node._baseline) == horizon
        full_node, _ = self._node()
        full_node.plan_day(0, PER_DAY, np.random.default_rng(0))
        np.testing.assert_allclose(
            node._baseline.values, full_node._baseline.values[:horizon]
        )


class TestHierarchySimulation:
    def test_balancing_improves(self):
        report = HierarchySimulation(ScenarioConfig(seed=3)).run()
        assert report.offers_submitted > 0
        assert report.offers_scheduled == report.offers_submitted
        assert report.peak_demand_after < report.peak_demand_before
        assert report.imbalance_after < report.imbalance_before
        assert report.res_utilization_after >= report.res_utilization_before

    def test_tso_path_schedules_everything(self):
        report = HierarchySimulation(
            ScenarioConfig(seed=3, use_tso=True)
        ).run()
        assert report.offers_scheduled == report.offers_submitted
        assert report.imbalance_after < report.imbalance_before

    def test_outage_falls_back_gracefully(self):
        """Unreachable prosumers lose their schedules but the day completes —
        the paper's graceful-degradation claim."""
        config = ScenarioConfig(
            seed=3, unreachable_prosumers=frozenset({"prosumer-0-0"})
        )
        report = HierarchySimulation(config).run()
        assert report.messages_dropped > 0
        assert report.offers_scheduled < report.offers_submitted
        assert report.imbalance_after < report.imbalance_before  # still helps

    def test_deterministic_under_seed(self):
        a = HierarchySimulation(ScenarioConfig(seed=11)).run()
        b = HierarchySimulation(ScenarioConfig(seed=11)).run()
        assert a.imbalance_after == b.imbalance_after
        assert a.offers_submitted == b.offers_submitted

    def test_message_accounting(self):
        report = HierarchySimulation(ScenarioConfig(seed=5)).run()
        # every prosumer sends one baseline measurement plus its offers, and
        # gets an accept + a schedule back for each offer
        expected_minimum = (
            2 * ScenarioConfig().prosumers_per_brp  # baselines, both BRPs
            + 3 * report.offers_submitted
        )
        assert report.messages_delivered >= expected_minimum


class TestBrpNegotiation:
    def test_compensation_accumulates(self):
        report = HierarchySimulation(ScenarioConfig(seed=3)).run()
        total = sum(r.compensation_eur for r in report.brp_results.values())
        assert total > 0  # every accepted offer was priced via negotiation
        accepted = sum(r.accepted for r in report.brp_results.values())
        assert total < accepted * 2.0  # bounded by per-offer value scale


class TestHeatPump:
    def test_two_anchored_blocks_with_shift(self):
        from repro.node import HeatPump

        rng = np.random.default_rng(8)
        pump = HeatPump(AXIS)
        offers = pump.flex_offers(0, rng)
        assert len(offers) == 2
        per_hour = AXIS.slices_per_hour
        morning, evening = sorted(offers, key=lambda o: o.earliest_start)
        assert 5 * per_hour <= morning.earliest_start < 6 * per_hour
        assert 16 * per_hour <= evening.earliest_start < 17 * per_hour
        for offer in offers:
            assert offer.time_flexibility == 3 * per_hour
            assert offer.total_energy_flexibility > 0

    def test_standby_baseline(self):
        from repro.node import HeatPump

        rng = np.random.default_rng(8)
        profile = HeatPump(AXIS).baseline(0, rng)
        assert (profile > 0).all()
        assert profile.sum() == pytest.approx(0.05 * 24, rel=1e-6)
