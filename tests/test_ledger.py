"""Durable event ledger: codec, segmented log, idempotency, DLQ, replay.

Covers the offer codec's bit-exact round trip, the segmented JSONL log's
rolling/fsync/torn-tail behaviour, the ledger's idempotency guard and
dead-letter queue (including their rebuild from disk across a restart
boundary), reverse-and-replace journaling for edits, and the two replay
modes of ``LedmsClient.resume_from_ledger``.
"""

import json

import pytest

from repro.api import LedmsClient, SubmitResult
from repro.api.config import IngestConfig, SchedulingConfig, ServiceConfig
from repro.api.ledger import (
    FACT_KINDS,
    INPUT_KINDS,
    JsonlEventLog,
    MemoryEventLog,
    OfferLedger,
    default_source_event_id,
    offer_from_dict,
    offer_to_dict,
)
from repro.core import flex_offer
from repro.core.errors import DataManagementError
from repro.core.timebase import TimeAxis
from repro.datamgmt.mirabel import LedmsStore
from repro.runtime import LoadGenerator, SimulatedDriver, state_fingerprint
from repro.runtime.triggers import AgeTrigger, AnyTrigger, CountTrigger


def _config(batch=4) -> ServiceConfig:
    return ServiceConfig(
        ingest=IngestConfig(batch_size=batch),
        scheduling=SchedulingConfig(
            horizon_slices=96,
            scheduler_passes=1,
            trigger=AnyTrigger([CountTrigger(20), AgeTrigger(8)]),
            min_run_interval_slices=2.0,
        ),
    )


def _offer(est, tf=6, duration=2, lo=1.0, hi=2.0, **kw):
    return flex_offer(
        [(lo, hi)] * duration, earliest_start=est, latest_start=est + tf, **kw
    )


def _ledger_client(log=None):
    ledger = OfferLedger(log if log is not None else MemoryEventLog())
    return LedmsClient(_config(), ledger=ledger)


# ----------------------------------------------------------------------
class TestCodec:
    def test_round_trip_is_exact(self):
        offer = _offer(10, lo=0.25, hi=1.7, owner="alice", unit_price=0.31)
        back = offer_from_dict(offer_to_dict(offer))
        assert offer_to_dict(back) == offer_to_dict(offer)
        assert back.offer_id == offer.offer_id
        assert back.owner == offer.owner
        assert [
            (c.min_energy, c.max_energy) for c in back.profile
        ] == [(c.min_energy, c.max_energy) for c in offer.profile]

    def test_round_trip_survives_json(self):
        offer = _offer(3, lo=0.1, hi=0.3)
        wire = json.loads(json.dumps(offer_to_dict(offer)))
        assert offer_to_dict(offer_from_dict(wire)) == offer_to_dict(offer)

    def test_malformed_record_raises(self):
        with pytest.raises(DataManagementError):
            offer_from_dict({"offer_id": 1})

    def test_source_event_id_stable_for_identical_content(self):
        offer = _offer(10)
        clone = offer_from_dict(offer_to_dict(offer))
        assert default_source_event_id(offer) == default_source_event_id(clone)

    def test_source_event_id_differs_for_edited_content(self):
        offer = _offer(10, lo=1.0, hi=2.0)
        edited = _offer(10, lo=2.0, hi=3.0, offer_id=offer.offer_id)
        assert default_source_event_id(offer) != default_source_event_id(edited)


# ----------------------------------------------------------------------
class TestJsonlEventLog:
    def test_append_replay_order(self, tmp_path):
        log = JsonlEventLog(tmp_path / "led", fsync="never")
        for i in range(5):
            log.append({"seq": i})
        assert [e["seq"] for e in log.replay()] == list(range(5))
        assert len(log) == 5

    def test_segments_roll(self, tmp_path):
        log = JsonlEventLog(
            tmp_path / "led", fsync="never", segment_max_events=3
        )
        for i in range(8):
            log.append({"seq": i})
        log.close()
        assert len(log.segments()) == 3
        assert [e["seq"] for e in log.replay()] == list(range(8))

    def test_reopen_resumes_count_and_order(self, tmp_path):
        log = JsonlEventLog(tmp_path / "led", segment_max_events=3)
        for i in range(4):
            log.append({"seq": i})
        log.close()
        reopened = JsonlEventLog(tmp_path / "led", segment_max_events=3)
        assert len(reopened) == 4
        reopened.append({"seq": 4})
        assert [e["seq"] for e in reopened.replay()] == list(range(5))

    def test_torn_tail_is_skipped_and_truncated(self, tmp_path):
        log = JsonlEventLog(tmp_path / "led")
        log.append({"seq": 0})
        log.append({"seq": 1})
        log.close()
        segment = log.segments()[-1]
        with open(segment, "ab") as handle:
            handle.write(b'{"seq": 2, "torn')  # crash mid-append
        assert [e["seq"] for e in log.replay()] == [0, 1]
        # Reopening truncates the torn tail so new appends stay intact.
        reopened = JsonlEventLog(tmp_path / "led")
        assert len(reopened) == 2
        reopened.append({"seq": 2})
        assert [e["seq"] for e in reopened.replay()] == [0, 1, 2]

    def test_mid_segment_corruption_raises(self, tmp_path):
        log = JsonlEventLog(tmp_path / "led")
        log.append({"seq": 0})
        log.close()
        segment = log.segments()[-1]
        with open(segment, "ab") as handle:
            handle.write(b"not json\n")
        with pytest.raises(DataManagementError):
            list(JsonlEventLog(tmp_path / "led").replay())

    def test_unknown_fsync_mode_raises(self, tmp_path):
        with pytest.raises(DataManagementError):
            JsonlEventLog(tmp_path / "led", fsync="sometimes")


# ----------------------------------------------------------------------
class TestIdempotency:
    def test_duplicate_submission_returns_recorded_result(self):
        client = _ledger_client()
        offer = _offer(10)
        first = client.submit(offer)
        assert first.accepted
        live_before = len(client.service._live)
        again = client.submit(offer)
        assert isinstance(again, SubmitResult)
        assert again.accepted and again.offer_id == first.offer_id
        assert len(client.service._live) == live_before  # no double-count
        assert client.ledger.duplicates == 1
        kinds = [e["kind"] for e in client.ledger.events()]
        assert kinds.count("submit") == 1
        assert "duplicate" in kinds

    def test_duplicate_rejection_replays_original_reason(self):
        client = _ledger_client()
        bad = _offer(5, lo=0.0, hi=0.0)  # carries no energy
        first = client.submit(bad)
        assert not first.accepted
        again = client.submit(bad)
        assert not again.accepted
        assert again.reason == first.reason
        # Only the first attempt is dead-lettered.
        assert len(client.dead_letters()) == 1

    def test_explicit_source_event_id_wins_over_content(self):
        client = _ledger_client()
        first = client.submit(_offer(10), source_event_id="ev-1")
        other = _offer(30)  # different content, same declared source event
        again = client.submit(other, source_event_id="ev-1")
        assert again.offer_id == first.offer_id
        assert client.ledger.duplicates == 1

    def test_guard_survives_restart_from_disk(self, tmp_path):
        log = JsonlEventLog(tmp_path / "led")
        client = _ledger_client(log)
        offer = _offer(10)
        first = client.submit(offer)
        client.ledger.close()
        # A fresh ledger over the same directory rebuilds the guard
        # before any replay runs.
        reopened = OfferLedger(JsonlEventLog(tmp_path / "led"))
        recorded = reopened.recorded_result(default_source_event_id(offer))
        assert recorded is not None
        assert recorded.accepted and recorded.offer_id == first.offer_id


# ----------------------------------------------------------------------
class TestFactJournal:
    def test_update_journals_reverse_and_replace_pair(self):
        client = _ledger_client()
        first = _offer(10, lo=1.0, hi=2.0)
        client.submit(first)
        revised = _offer(12, lo=2.0, hi=3.0, offer_id=first.offer_id)
        assert client.update(revised).accepted
        events = list(client.ledger.events())
        reverse = next(e for e in events if e["kind"] == "reverse")
        replace = next(e for e in events if e["kind"] == "replace")
        assert reverse["offer_id"] == first.offer_id
        assert replace["reverses"] == first.offer_id
        assert reverse["seq"] < replace["seq"]
        # An edit is a correction pair, not a withdraw+submit triple.
        assert not any(e["kind"] == "withdraw" for e in events)

    def test_rejected_update_journals_no_reverse(self):
        client = _ledger_client()
        first = _offer(10)
        client.submit(first)
        bad = _offer(12, lo=0.0, hi=0.0, offer_id=first.offer_id)
        assert not client.update(bad).accepted
        events = list(client.ledger.events())
        assert not any(e["kind"] == "reverse" for e in events)
        assert any(e["kind"] == "dead_letter" for e in events)
        # The original version stays live.
        assert first.offer_id in client.service._live

    def test_rejection_routes_to_dead_letter_queue(self):
        client = _ledger_client()
        result = client.submit(_offer(5, lo=0.0, hi=0.0))
        assert not result.accepted
        letters = client.dead_letters()
        assert len(letters) == 1
        assert letters[0].reason == result.reason
        assert letters[0].offer is not None

    def test_dead_letters_rebuild_from_disk(self, tmp_path):
        log = JsonlEventLog(tmp_path / "led")
        client = _ledger_client(log)
        client.submit(_offer(5, lo=0.0, hi=0.0))
        client.ledger.close()
        reopened = OfferLedger(JsonlEventLog(tmp_path / "led"))
        assert len(reopened.dead_letters()) == 1

    def test_unknown_fact_kind_raises(self):
        ledger = OfferLedger()
        with pytest.raises(DataManagementError):
            ledger._append("telegram", at=0.0)

    def test_input_kinds_are_a_subset_of_fact_kinds(self):
        assert set(INPUT_KINDS) <= set(FACT_KINDS)


# ----------------------------------------------------------------------
class TestStoreReplay:
    def test_record_offer_event_requires_registered_actor(self):
        store = LedmsStore(TimeAxis(15))
        offer = _offer(10, owner="ghost")
        with pytest.raises(DataManagementError):
            store.record_offer_event("ghost", offer, "accepted", 0)

    def test_replay_offer_event_auto_registers_actor(self):
        store = LedmsStore(TimeAxis(15))
        offer = _offer(10, owner="ghost")
        store.replay_offer_event("ghost", offer, "accepted", 0)
        assert store.offer_state(offer.offer_id) == "accepted"
        # Idempotent: replaying more facts for the same actor is fine.
        store.replay_offer_event("ghost", offer, "scheduled", 1)
        assert store.offer_state(offer.offer_id) == "scheduled"


# ----------------------------------------------------------------------
class TestResumeFromLedger:
    def _run(self, log, duration=48.0):
        client = _ledger_client(log)
        stream = LoadGenerator(rate_per_hour=40, seed=3).stream(0.0, duration)
        client.run_stream(stream, duration)
        return client

    def test_reexecute_is_bit_identical(self, tmp_path):
        log = JsonlEventLog(tmp_path / "led")
        original = self._run(log)
        original.ledger.close()
        resumed = LedmsClient.resume_from_ledger(
            str(tmp_path / "led"), _config()
        )
        assert resumed.last_replay.mode == "reexecute"
        assert state_fingerprint(resumed) == state_fingerprint(original)

    def test_project_restores_live_pool_and_commitments(self):
        log = MemoryEventLog()
        original = self._run(log)
        # An explicit driver past the log's first instant selects projection.
        driver = SimulatedDriver(original.service.now)
        resumed = LedmsClient.resume_from_ledger(
            log, _config(), driver=driver
        )
        assert resumed.last_replay.mode == "project"
        assert sorted(resumed.service._live) == sorted(original.service._live)
        assert (
            resumed.service._committed_start == original.service._committed_start
        )
        assert (
            resumed.service.store.state_counts()
            == original.service.store.state_counts()
        )

    def test_resumed_client_keeps_journaling(self):
        log = MemoryEventLog()
        original = self._run(log)
        before = original.ledger.appends
        resumed = LedmsClient.resume_from_ledger(log, _config())
        result = resumed.submit(_offer(int(resumed.service.now) + 4))
        assert result.accepted
        assert resumed.ledger.appends > before
