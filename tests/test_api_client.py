"""The LedmsClient facade: typed operations, hooks, sessions, restart.

Covers the request/response surface (submit/update/withdraw/query/plan),
the lifecycle hooks, the per-prosumer session scoping, and
``LedmsClient.resume`` rebuilding a live pool from store lifecycle facts —
including a mid-stream restart round-trip to the same pool state.
"""

import pytest

from repro.api import LedmsClient, OfferView, PlanView, SubmitResult
from repro.api.config import IngestConfig, SchedulingConfig, ServiceConfig
from repro.core import flex_offer
from repro.core.errors import ServiceError
from repro.runtime import LoadGenerator
from repro.runtime.triggers import AgeTrigger, AnyTrigger, CountTrigger


def _config(batch=4) -> ServiceConfig:
    return ServiceConfig(
        ingest=IngestConfig(batch_size=batch),
        scheduling=SchedulingConfig(
            horizon_slices=96,
            scheduler_passes=1,
            trigger=AnyTrigger([CountTrigger(20), AgeTrigger(8)]),
            min_run_interval_slices=2.0,
        ),
    )


def _offer(est, tf=6, duration=2, lo=1.0, hi=2.0, **kw):
    return flex_offer(
        [(lo, hi)] * duration, earliest_start=est, latest_start=est + tf, **kw
    )


def _member_sets(service):
    """The pool's aggregates as member-id sets (pipeline-instance agnostic)."""
    return {
        frozenset(m.offer_id for m in update.aggregate.members)
        for update in service.pool.values()
    }


class TestOperations:
    def test_submit_returns_typed_result(self):
        client = LedmsClient(_config())
        result = client.submit(_offer(10))
        assert isinstance(result, SubmitResult)
        assert result and result.accepted
        assert result.offer is not None
        assert result.reason is None

    def test_rejection_carries_reason(self):
        client = LedmsClient(_config())
        result = client.submit(_offer(5, lo=0.0, hi=0.0))  # carries no energy
        assert not result
        assert "energy" in result.reason

    def test_query_offer_lifecycle(self):
        client = LedmsClient(_config())
        oid = client.submit(_offer(10)).offer_id
        view = client.query_offer(oid)
        assert isinstance(view, OfferView)
        assert view.live and not view.scheduled
        assert view.state == "accepted"
        assert view.offer is not None
        missing = client.query_offer(999_999_999)
        assert not missing.live and missing.state is None

    def test_withdraw_removes_from_pool(self):
        client = LedmsClient(_config())
        oid = client.submit(_offer(10)).offer_id
        assert client.withdraw(oid)
        client.service.run_aggregation()
        assert client.query_offer(oid).state == "withdrawn"
        assert not client.query_offer(oid).live
        # Terminal offers drop their retained object (memory bound on long
        # streams); the lifecycle state stays queryable.
        assert client.query_offer(oid).offer is None
        assert client.service.ingest.input_count == 0
        assert not client.withdraw(oid)  # already gone

    def test_update_replaces_offer_in_place(self):
        client = LedmsClient(_config())
        first = _offer(10, lo=1.0, hi=2.0)
        client.submit(first)
        revised = _offer(12, lo=2.0, hi=3.0, offer_id=first.offer_id)
        result = client.update(revised)
        assert result.accepted
        assert result.offer_id == first.offer_id
        client.service.run_aggregation()
        assert client.service.ingest.input_count == 1
        view = client.query_offer(first.offer_id)
        assert view.live
        assert view.offer.earliest_start == 12

    def test_rejected_update_leaves_original_intact(self):
        # A failed update must be side-effect free: the inadmissible
        # revision is rejected *before* the live offer is withdrawn.
        client = LedmsClient(_config())
        original = _offer(10)
        client.submit(original)
        bad = _offer(12, lo=0.0, hi=0.0, offer_id=original.offer_id)
        result = client.update(bad)
        assert not result.accepted
        assert "energy" in result.reason
        view = client.query_offer(original.offer_id)
        assert view.live
        assert view.offer.earliest_start == 10  # untouched

    def test_sharded_client_reports_rejection_reason(self):
        # ShardedFlexOfferIngest must expose the same rejection surface as
        # the single-pipeline ingest (regression: AttributeError).
        from repro.api.config import AggregationConfig

        config = ServiceConfig(
            aggregation=AggregationConfig(shards=4),
            ingest=IngestConfig(batch_size=4),
        )
        client = LedmsClient(config)
        result = client.submit(_offer(5, lo=0.0, hi=0.0))
        assert not result.accepted
        assert "energy" in result.reason
        assert client.submit(_offer(10)).accepted

    def test_max_duration_admission_limit_enforced(self):
        # Regression: the configured limit must reach the ingest stage,
        # single-pipeline and sharded alike.
        from repro.api.config import AggregationConfig

        for shards in (1, 4):
            config = ServiceConfig(
                aggregation=AggregationConfig(shards=shards),
                ingest=IngestConfig(batch_size=4, max_duration_slices=4),
            )
            client = LedmsClient(config)
            result = client.submit(_offer(10, duration=8))
            assert not result.accepted
            assert "admission limit" in result.reason
            assert client.submit(_offer(10, duration=2)).accepted

    def test_update_of_unknown_offer_degrades_to_submit(self):
        client = LedmsClient(_config())
        result = client.update(_offer(10))
        assert result.accepted
        assert client.live_offers == 1

    def test_schedule_now_and_current_plan(self):
        client = LedmsClient(_config())
        assert client.current_plan() is None
        ids = [client.submit(_offer(8 + i)).offer_id for i in range(4)]
        plan = client.schedule_now()
        assert isinstance(plan, PlanView)
        assert plan is client.current_plan()
        assert plan.aggregates >= 1
        assert sum(a.members for a in plan.assignments) == len(ids)
        assert plan.scheduled_offers == len(ids)
        for oid in ids:
            view = client.query_offer(oid)
            assert view.scheduled and view.committed_start is not None

    def test_metrics_snapshot(self):
        client = LedmsClient(_config())
        client.submit(_offer(10))
        snapshot = client.metrics()
        assert snapshot["ingest.accepted"] == 1.0

    def test_run_stream_delegates(self):
        client = LedmsClient(_config())
        generator = LoadGenerator(rate_per_hour=30, seed=11)
        report = client.run_stream(generator.stream(0, 24), 24)
        assert report.offers_accepted > 0
        assert report.offers_scheduled > 0


class TestHooks:
    def test_on_plan_committed_fires_with_view(self):
        client = LedmsClient(_config())
        plans = []
        client.on_plan_committed(plans.append)
        for i in range(4):
            client.submit(_offer(8 + i))
        client.schedule_now()
        assert len(plans) == 1
        assert isinstance(plans[0], PlanView)
        assert plans[0].aggregates >= 1

    def test_on_offer_state_change_sees_lifecycle(self):
        client = LedmsClient(_config())
        events = []
        client.on_offer_state_change(lambda oid, state, now: events.append(state))
        oid = client.submit(_offer(10)).offer_id
        client.withdraw(oid)
        assert events[:2] == ["submitted", "accepted"]
        assert events[-1] == "withdrawn"


class TestSession:
    def test_session_stamps_owner(self):
        client = LedmsClient(_config())
        session = client.session("prosumer-7")
        result = session.submit(_offer(10, owner="someone-else"))
        assert result.accepted
        assert result.offer.owner == "prosumer-7"
        assert session.live_count == 1
        (view,) = session.offers()
        assert view.live

    def test_session_cannot_touch_foreign_offers(self):
        client = LedmsClient(_config())
        foreign = client.submit(_offer(10)).offer_id
        session = client.session("prosumer-7")
        with pytest.raises(ServiceError):
            session.withdraw(foreign)
        with pytest.raises(ServiceError):
            session.update(_offer(11, offer_id=foreign))

    def test_empty_owner_rejected(self):
        with pytest.raises(ServiceError):
            LedmsClient(_config()).session("")


class TestResume:
    def test_resume_round_trips_pool_state(self):
        # Controlled future-window offers: the resumed pool must regroup to
        # exactly the same aggregates (same member sets) as the original.
        client = LedmsClient(_config())
        for i in range(10):
            client.submit(_offer(20 + 2 * i, tf=8, owner=f"p{i % 3}"))
        client.service.run_aggregation()
        original_members = _member_sets(client.service)
        original_live = sorted(client.service._live)
        assert original_members

        resumed = LedmsClient.resume(client.store, _config())
        resumed.service.run_aggregation()
        assert sorted(resumed.service._live) == original_live
        assert resumed.service.ingest.input_count == len(original_live)
        assert _member_sets(resumed.service) == original_members

    def test_resume_mid_stream_restart(self):
        # Drive a real Poisson stream, "crash", resume from the store: the
        # live population carries over one-to-one and the node keeps
        # serving (clock starts at the store's last event time).
        client = LedmsClient(_config(batch=8))
        generator = LoadGenerator(rate_per_hour=40, seed=3)
        client.run_stream(generator.stream(0, 24), 24)
        live_before = sorted(client.service._live)
        assert live_before  # stream left live offers behind

        resumed = LedmsClient.resume(client.store, _config(batch=8))
        assert resumed.now == client.store.last_event_time
        assert sorted(resumed.service._live) == live_before
        assert resumed.service.ingest.input_count == len(live_before)
        # The resumed node schedules the inherited pool.
        plan = resumed.schedule_now()
        assert plan is not None and plan.aggregates >= 1

    def test_resume_includes_scheduled_offers(self):
        client = LedmsClient(_config())
        oid = client.submit(_offer(20, tf=8)).offer_id
        client.schedule_now()
        assert client.query_offer(oid).state == "scheduled"
        resumed = LedmsClient.resume(client.store, _config())
        assert oid in resumed.service._live
        # Re-admitted: scheduling state is rebuilt by the next plan.
        assert resumed.query_offer(oid).state in ("accepted", "aggregated")

    def test_resume_rejects_rewound_driver(self):
        from repro.runtime import SimulatedDriver

        client = LedmsClient(_config())
        client.submit(_offer(20, tf=8))
        client.service.queue.clock.advance_to(10)
        client.submit(_offer(30, tf=8))  # records events at t=10
        with pytest.raises(ServiceError):
            LedmsClient.resume(client.store, _config(), driver=SimulatedDriver(0.0))
        # Anchored at (or after) the last event time is fine.
        resumed = LedmsClient.resume(
            client.store, _config(), driver=SimulatedDriver(10.0)
        )
        assert resumed.live_offers == 2

    def test_resume_excludes_terminal_offers(self):
        client = LedmsClient(_config())
        kept = client.submit(_offer(20, tf=8)).offer_id
        gone = client.submit(_offer(21, tf=8)).offer_id
        client.withdraw(gone)
        resumed = LedmsClient.resume(client.store, _config())
        assert kept in resumed.service._live
        assert gone not in resumed.service._live
