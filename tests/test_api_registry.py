"""The engine registry and the composed service configuration.

Pins the satellite fix of this PR: engine validation in the runtime config
and in ``make_pipeline`` route through the *same* registry, so the set of
accepted names can never diverge again (``reference`` used to be accepted
by one and rejected by the other).
"""

import warnings

import pytest

from repro.aggregation.pipeline import PIPELINE_ENGINES, make_pipeline
from repro.aggregation.thresholds import AggregationParameters
from repro.api import (
    KIND_AGGREGATION,
    KIND_DRIVER,
    KIND_SCHEDULER,
    KIND_TRIGGER,
    Registry,
    RegistryError,
    default_registry,
)
from repro.api.config import (
    AggregationConfig,
    IngestConfig,
    MarketConfig,
    RuntimeConfig,
    SchedulingConfig,
    ServiceConfig,
    build_trigger,
)
from repro.core.errors import AggregationError, ServiceError
from repro.runtime.triggers import AnyTrigger, CountTrigger
from repro.scheduling import (
    DeltaScheduler,
    EvolutionaryScheduler,
    ExhaustiveScheduler,
    RandomizedGreedyScheduler,
)

PARAMS = AggregationParameters(
    start_after_tolerance=8, time_flexibility_tolerance=8, name="test"
)


class TestRegistry:
    def test_builtin_catalogue(self):
        registry = default_registry()
        assert registry.names(KIND_AGGREGATION) == (
            "packed", "reference", "scalar",
        )
        assert registry.names(KIND_SCHEDULER) == (
            "delta", "evolutionary", "exhaustive", "greedy",
        )
        assert registry.names(KIND_TRIGGER) == (
            "adaptive", "age", "any", "count", "imbalance",
        )
        assert registry.names(KIND_DRIVER) == ("simulated", "wallclock")

    def test_unknown_name_error_lists_known_set(self):
        with pytest.raises(RegistryError) as excinfo:
            default_registry().get(KIND_AGGREGATION, "bogus")
        message = str(excinfo.value)
        for name in ("packed", "reference", "scalar"):
            assert name in message

    def test_duplicate_registration_rejected_unless_replace(self):
        registry = Registry()
        registry.register("kind", "x", int)
        with pytest.raises(RegistryError):
            registry.register("kind", "x", float)
        entry = registry.register("kind", "x", float, replace=True)
        assert entry.factory is float

    def test_scheduler_capabilities_mirror_class_attributes(self):
        registry = default_registry()
        for name, cls in (
            ("greedy", RandomizedGreedyScheduler),
            ("evolutionary", EvolutionaryScheduler),
            ("exhaustive", ExhaustiveScheduler),
            ("delta", DeltaScheduler),
        ):
            assert registry.capabilities(KIND_SCHEDULER, name) == cls.capabilities
            assert isinstance(registry.create(KIND_SCHEDULER, name), cls)

    def test_render_mentions_every_entry(self):
        text = default_registry().render()
        for name in ("packed", "greedy", "wallclock", "imbalance"):
            assert name in text


class TestUnifiedEngineValidation:
    def test_runtime_config_accepts_every_pipeline_engine(self):
        # The historical bug: RuntimeConfig rejected "reference" although
        # make_pipeline supported it.  Both now consult the registry.
        for engine in default_registry().names(KIND_AGGREGATION):
            config = ServiceConfig(aggregation=AggregationConfig(engine=engine))
            assert config.engine == engine
            assert make_pipeline(PARAMS, engine=engine) is not None

    def test_pipeline_engines_constant_matches_registry(self):
        assert set(PIPELINE_ENGINES) == set(
            default_registry().names(KIND_AGGREGATION)
        )

    def test_both_sites_reject_with_the_same_known_set(self):
        with pytest.raises(ServiceError) as config_err:
            AggregationConfig(engine="bogus")  # replint: ignore[REP003]
        with pytest.raises(AggregationError) as pipeline_err:
            make_pipeline(PARAMS, engine="bogus")  # replint: ignore[REP003]
        assert str(config_err.value) == str(pipeline_err.value)


class TestServiceConfig:
    def test_flat_properties_cover_historical_names(self):
        config = ServiceConfig(
            market=MarketConfig(buy_price=0.3),
            aggregation=AggregationConfig(engine="scalar", shards=2),
            scheduling=SchedulingConfig(horizon_slices=96, seed=7),
            ingest=IngestConfig(batch_size=16),
        )
        assert config.buy_price == 0.3
        assert config.engine == "scalar"
        assert config.shards == 2
        assert config.horizon_slices == 96
        assert config.seed == 7
        assert config.batch_size == 16
        assert config.aggregation_parameters.name == "runtime"

    def test_every_flat_field_is_readable_as_a_property(self):
        # from_flat/merged accept exactly _FLAT_FIELDS; each key must also
        # read back flat, so the two views cannot drift apart.
        config = ServiceConfig()
        for name in ServiceConfig._FLAT_FIELDS:
            getattr(config, name)

    def test_validation_errors_preserved(self):
        with pytest.raises(ServiceError):
            IngestConfig(batch_size=0)
        with pytest.raises(ServiceError):
            SchedulingConfig(horizon_slices=-1)
        with pytest.raises(ServiceError):
            SchedulingConfig(scheduler_passes=0)
        with pytest.raises(ServiceError):
            IngestConfig(expiry_sweep_interval=0)
        with pytest.raises(ServiceError):
            AggregationConfig(shards=0)

    def test_scheduler_requires_runtime_capability(self):
        with pytest.raises(ServiceError) as excinfo:
            SchedulingConfig(scheduler="evolutionary")
        assert "runtime" in str(excinfo.value)

    def test_from_flat_and_merged(self):
        config = ServiceConfig.from_flat(batch_size=8, engine="scalar", seed=3)
        assert (config.batch_size, config.engine, config.seed) == (8, "scalar", 3)
        merged = config.merged(seed=9, shards=2)
        assert merged.seed == 9 and merged.shards == 2
        assert merged.batch_size == 8  # untouched sections carried over
        with pytest.raises(ServiceError):
            config.merged(nonsense=1)

    def test_from_dict_nested_and_trigger_spec(self):
        config = ServiceConfig.from_dict(
            {
                "scheduling": {
                    "horizon_slices": 96,
                    "trigger": [
                        {"kind": "count", "threshold": 50},
                        {"kind": "age", "max_age_slices": 4},
                    ],
                },
                "ingest": {"batch_size": 16},
                "engine": "scalar",
            }
        )
        assert config.horizon_slices == 96
        assert config.batch_size == 16
        assert config.engine == "scalar"
        assert isinstance(config.trigger, AnyTrigger)
        assert len(config.trigger.policies) == 2

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ServiceError):
            ServiceConfig.from_dict({"bogus": 1})

    def test_build_trigger_single_and_passthrough(self):
        single = build_trigger({"kind": "count", "threshold": 5})
        assert isinstance(single, CountTrigger)
        policy = CountTrigger(3)
        assert build_trigger(policy) is policy
        with pytest.raises(ServiceError):
            build_trigger([{"threshold": 5}])  # missing kind


class TestRuntimeConfigShim:
    def test_flat_constructor_warns_and_builds_composed_form(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = RuntimeConfig(batch_size=8, engine="reference", seed=4)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert isinstance(config, ServiceConfig)
        assert config.batch_size == 8
        assert config.engine == "reference"
        assert config.seed == 4
        assert config.scheduling.scheduler == "greedy"

    def test_shim_still_validates(self):
        with pytest.raises(ServiceError):
            RuntimeConfig(batch_size=0)
        with pytest.raises(ServiceError):
            RuntimeConfig(engine="bogus")  # replint: ignore[REP003]

    def test_shim_importable_from_runtime(self):
        from repro.runtime import RuntimeConfig as FromRuntime

        assert FromRuntime is RuntimeConfig
