"""Tests for the parameter estimators (Nelder-Mead, RRNM, SA, random search)."""

import numpy as np
import pytest

from repro.core.errors import ForecastingError
from repro.forecasting import (
    EstimationBudget,
    NelderMead,
    ParameterSpace,
    RandomRestartNelderMead,
    RandomSearch,
    SimulatedAnnealing,
    paper_estimators,
)

SPACE = ParameterSpace(("x", "y"), (-5.0, -5.0), (5.0, 5.0))


def sphere(p):
    return float(np.sum((p - 1.0) ** 2))


def rastrigin(p):
    return float(10 * len(p) + np.sum(p**2 - 10 * np.cos(2 * np.pi * p)))


class TestBudget:
    def test_needs_some_limit(self):
        with pytest.raises(ForecastingError):
            EstimationBudget()

    def test_rejects_nonpositive(self):
        with pytest.raises(ForecastingError):
            EstimationBudget(seconds=0)
        with pytest.raises(ForecastingError):
            EstimationBudget(max_evaluations=0)

    def test_evaluation_budget_is_exact(self):
        result = RandomSearch().estimate(
            sphere, SPACE, EstimationBudget.of_evaluations(25),
            rng=np.random.default_rng(0),
        )
        assert result.evaluations == 25

    def test_time_budget_respected(self):
        budget = EstimationBudget.of_seconds(0.2)
        result = RandomSearch().estimate(
            sphere, SPACE, budget, rng=np.random.default_rng(0)
        )
        assert result.elapsed_seconds < 0.4


class TestTrace:
    def test_trace_is_monotone_nonincreasing(self):
        result = SimulatedAnnealing().estimate(
            sphere, SPACE, EstimationBudget.of_evaluations(100),
            rng=np.random.default_rng(1),
        )
        errors = [e for _, e in result.trace]
        assert errors == sorted(errors, reverse=True) or all(
            errors[i] >= errors[i + 1] for i in range(len(errors) - 1)
        )

    def test_trace_times_increase(self):
        result = RandomSearch().estimate(
            sphere, SPACE, EstimationBudget.of_evaluations(50),
            rng=np.random.default_rng(1),
        )
        times = [t for t, _ in result.trace]
        assert all(times[i] <= times[i + 1] for i in range(len(times) - 1))

    def test_error_at(self):
        result = RandomSearch().estimate(
            sphere, SPACE, EstimationBudget.of_evaluations(50),
            rng=np.random.default_rng(1),
        )
        assert result.error_at(float("inf")) == pytest.approx(result.error)
        assert result.error_at(-1.0) == float("inf")


@pytest.mark.parametrize("estimator", paper_estimators(), ids=lambda e: e.name)
class TestAllEstimators:
    def test_finds_sphere_minimum(self, estimator):
        result = estimator.estimate(
            sphere, SPACE, EstimationBudget.of_evaluations(400),
            rng=np.random.default_rng(2),
        )
        assert result.error < 0.3
        assert np.all(result.params >= np.asarray(SPACE.lower))
        assert np.all(result.params <= np.asarray(SPACE.upper))

    def test_warm_start_is_evaluated_first(self, estimator):
        initial = np.array([1.0, 1.0])  # the optimum itself
        result = estimator.estimate(
            sphere, SPACE, EstimationBudget.of_evaluations(5),
            rng=np.random.default_rng(3), initial=initial,
        )
        assert result.error == pytest.approx(0.0)

    def test_deterministic_under_seed(self, estimator):
        kwargs = dict(budget=EstimationBudget.of_evaluations(60))
        a = estimator.estimate(sphere, SPACE, rng=np.random.default_rng(7), **kwargs)
        b = estimator.estimate(sphere, SPACE, rng=np.random.default_rng(7), **kwargs)
        assert a.error == b.error
        np.testing.assert_array_equal(a.params, b.params)


class TestNelderMead:
    def test_descends_quickly_on_convex(self):
        result = NelderMead().estimate(
            sphere, SPACE, EstimationBudget.of_evaluations(120),
            rng=np.random.default_rng(0),
        )
        assert result.error < 1e-3

    def test_restart_wrapper_beats_single_descent_on_multimodal(self):
        space = ParameterSpace(("x", "y"), (-5.12, -5.12), (5.12, 5.12))
        budget = EstimationBudget.of_evaluations(600)
        single = NelderMead(tolerance=1e-12).descend  # raw descent, no restart

        rrnm = RandomRestartNelderMead().estimate(
            rastrigin, space, budget, rng=np.random.default_rng(4)
        )
        # RRNM should get close to the global optimum at 0
        assert rrnm.error < 2.0

    def test_budget_exhaustion_mid_descent_is_safe(self):
        result = NelderMead().estimate(
            sphere, SPACE, EstimationBudget.of_evaluations(3),
            rng=np.random.default_rng(0),
        )
        assert result.evaluations == 3


class TestSimulatedAnnealing:
    def test_invalid_cooling(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling=1.5)

    def test_accepts_uphill_sometimes(self):
        """At high temperature the chain must not be pure greedy descent."""
        calls = []

        def tracked(p):
            value = sphere(p)
            calls.append(value)
            return value

        SimulatedAnnealing(initial_temperature=10.0).estimate(
            tracked, SPACE, EstimationBudget.of_evaluations(200),
            rng=np.random.default_rng(5),
        )
        increases = sum(1 for a, b in zip(calls, calls[1:]) if b > a)
        assert increases > 10
