"""Tests for the repro-lint static checker (tools/replint).

Each rule gets a fixture pair — one snippet that must fire and one that
must stay silent — written into a temp tree whose sub-directories mimic
the repo layout (scoped rules match on path fragments like ``runtime/``).
On top sit the mechanism tests (suppressions, baseline round-trip, CLI
exit codes) and the meta-test: the linter runs clean over the real repo.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from tools.replint.baseline import load_baseline, split_baseline, write_baseline
from tools.replint.cli import run as replint_run
from tools.replint.core import Finding, lint_paths, parse_suppressions
from tools.replint.resolver import ProjectContext, find_repo_root
from tools.replint.rules import ALL_RULES, rules_by_id

REPO_ROOT = find_repo_root()
PROJECT = ProjectContext(REPO_ROOT)


def lint_snippet(tmp_path, rel, source, rule_ids=None):
    """Write ``source`` at ``tmp_path/rel`` and lint it; return findings."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = rules_by_id(rule_ids) if rule_ids else ALL_RULES
    findings, errors = lint_paths([path], rules, root=tmp_path, project=PROJECT)
    assert errors == []
    return findings


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


# ----------------------------------------------------------------------
# project context extraction
# ----------------------------------------------------------------------
class TestProjectContext:
    def test_event_kinds_extracted(self):
        assert "offer" in PROJECT.event_kinds
        assert "ledger_append" in PROJECT.event_kinds
        assert "bogus" not in PROJECT.event_kinds

    def test_registry_names_extracted(self):
        assert "packed" in PROJECT.registry_names["aggregation"]
        assert "greedy" in PROJECT.registry_names["scheduler"]
        assert "simulated" in PROJECT.registry_names["driver"]

    def test_missing_root_degrades_to_empty(self, tmp_path):
        ctx = ProjectContext(tmp_path)
        assert ctx.event_kinds == frozenset()
        assert ctx.registry_names == {}


# ----------------------------------------------------------------------
# REP001: tracer guard
# ----------------------------------------------------------------------
class TestTracerGuard:
    def test_flags_unguarded_record_call(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/mod.py",
            """
            def emit(self, offer_id):
                self.tracer.offer_event(offer_id, "stored")
            """,
        )
        assert rule_ids(findings) == ["REP001"]

    def test_inline_guard_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/mod.py",
            """
            def emit(self, offer_id):
                if self.tracer.enabled:
                    self.tracer.offer_event(offer_id, "stored")
            """,
        )
        assert findings == []

    def test_guard_variable_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/mod.py",
            """
            def emit(self, offer_id):
                trace = self.tracer.enabled
                for _ in range(3):
                    if trace:
                        self.tracer.offer_event(offer_id, "stored")
            """,
        )
        assert findings == []

    def test_early_return_guard_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "ledger/replay.py",
            """
            def emit(tracer, offers):
                if not tracer.enabled:
                    return
                for offer in offers:
                    tracer.replay_event(offer, "restored")
            """,
        )
        assert findings == []

    def test_span_is_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/mod.py",
            """
            def stage(self):
                return self.tracer.span("aggregate")
            """,
        )
        assert findings == []

    def test_out_of_scope_module_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "forecasting/mod.py",
            """
            def emit(self, offer_id):
                self.tracer.offer_event(offer_id, "stored")
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP002: event kinds
# ----------------------------------------------------------------------
class TestEventKind:
    def test_flags_unknown_kind_in_record(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def build():
                return {"event": "not_a_kind", "seq": 0}
            """,
        )
        assert rule_ids(findings) == ["REP002"]

    def test_known_kind_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def build():
                return {"event": "offer", "seq": 0}
            """,
        )
        assert findings == []

    def test_flags_comparison_against_unknown_kind(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def pick(records):
                return [r for r in records if r["event"] == "not_a_kind"]
            """,
        )
        assert rule_ids(findings) == ["REP002"]

    def test_get_comparison_known_kind_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def pick(records):
                return [r for r in records if r.get("event") == "ledger_replay"]
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP003: registry names
# ----------------------------------------------------------------------
class TestRegistryName:
    def test_flags_unknown_engine_keyword(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def go(make):
                return make(engine="turbo")
            """,
        )
        assert rule_ids(findings) == ["REP003"]

    def test_known_names_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def go(make):
                return make(engine="packed", scheduler="greedy", driver="simulated")
            """,
        )
        assert findings == []

    def test_flags_bad_default_in_signature(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def run(scheduler="quantum"):
                return scheduler
            """,
        )
        assert rule_ids(findings) == ["REP003"]

    def test_valid_signature_default_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def run(engine="reference", *, exporter="prometheus"):
                return engine, exporter
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP004: sim-path time / RNG
# ----------------------------------------------------------------------
class TestSimPathTime:
    def test_flags_wall_clock_in_sim_path(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert rule_ids(findings) == ["REP004"]

    def test_flags_unseeded_default_rng_through_alias(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "scheduling/mod.py",
            """
            import numpy as np

            def pick():
                return np.random.default_rng()
            """,
        )
        assert rule_ids(findings) == ["REP004"]

    def test_flags_module_level_random(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "node/mod.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert rule_ids(findings) == ["REP004"]

    def test_seeded_rng_and_perf_counter_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "scheduling/mod.py",
            """
            import time
            import numpy as np

            def pick(seed):
                started = time.perf_counter()
                rng = np.random.default_rng(seed)
                return rng, time.perf_counter() - started
            """,
        )
        assert findings == []

    def test_wall_clock_fine_outside_sim_path(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "obs/mod.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP005: shared-memory unlink
# ----------------------------------------------------------------------
class TestShmUnlink:
    def test_flags_create_without_unlink(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            from multiprocessing import shared_memory

            def make(name, size):
                return shared_memory.SharedMemory(name=name, create=True, size=size)
            """,
        )
        assert rule_ids(findings) == ["REP005"]

    def test_module_with_unlink_path_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            from multiprocessing import shared_memory

            def make(name, size):
                return shared_memory.SharedMemory(name=name, create=True, size=size)

            def unlink_segment(name):
                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP006: journal before cascade
# ----------------------------------------------------------------------
class TestJournalFirst:
    def test_flags_cascade_before_append(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def submit(self, offer):
                self.run_aggregation()
                self.ledger.record_submit(offer, True, offer_id=1)
            """,
        )
        assert rule_ids(findings) == ["REP006"]

    def test_journal_first_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def submit(self, offer):
                self.ledger.record_submit(offer, True, offer_id=1)
                self.run_aggregation()
                self.maybe_schedule()
            """,
        )
        assert findings == []

    def test_cascade_without_journal_is_not_this_rules_business(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def tick(self):
                self.run_aggregation()
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP007: Message trace keyword
# ----------------------------------------------------------------------
class TestMessageTrace:
    def test_flags_positional_trace(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            from repro.node.messages import Message

            def send(ctx):
                return Message("a", "b", "submit", {}, 0, 7, ctx)
            """,
        )
        assert rule_ids(findings) == ["REP007"]

    def test_keyword_trace_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            from repro.node.messages import Message

            def send(ctx):
                return Message("a", "b", "submit", {}, 0, trace=ctx)
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP008: swallowed exceptions
# ----------------------------------------------------------------------
class TestSwallowedException:
    def test_flags_bare_except(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/mod.py",
            """
            def teardown(worker):
                try:
                    worker.join()
                except:
                    pass
            """,
        )
        assert rule_ids(findings) == ["REP008"]

    def test_flags_except_exception_pass(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "node/mod.py",
            """
            def teardown(worker):
                try:
                    worker.join()
                except Exception:
                    pass
            """,
        )
        assert rule_ids(findings) == ["REP008"]

    def test_narrow_except_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/mod.py",
            """
            def teardown(worker):
                try:
                    worker.join()
                except (OSError, ValueError):
                    pass
            """,
        )
        assert findings == []

    def test_broad_except_with_handling_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "runtime/mod.py",
            """
            def teardown(worker, log):
                try:
                    worker.join()
                except Exception as exc:
                    log.append(exc)
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP009: trigger/cadence state seam
# ----------------------------------------------------------------------
class TestTriggerStateWrite:
    def test_flags_foreign_cadence_write(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/ledger/mod.py",
            """
            def park(service):
                service._last_run_time = float("inf")
            """,
        )
        assert rule_ids(findings) == ["REP009"]

    def test_flags_foreign_offer_counter_reset(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/api/mod.py",
            """
            def reset(client):
                client.service._offers_since_run = 0
            """,
        )
        assert rule_ids(findings) == ["REP009"]

    def test_own_cadence_write_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/runtime/cluster_like.py",
            """
            class Node:
                def run(self):
                    self._last_run_time = self.now
                    self._offers_since_run = 0
            """,
        )
        assert findings == []

    def test_flags_threshold_write_outside_triggers(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/runtime/mod.py",
            """
            def loosen(trigger):
                trigger.count_threshold = 10_000
            """,
        )
        assert rule_ids(findings) == ["REP009"]

    def test_flags_own_threshold_write_outside_triggers(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/runtime/mod.py",
            """
            class Policy:
                def observe(self, metrics):
                    self.max_age_slices = 1.0
            """,
        )
        assert rule_ids(findings) == ["REP009"]

    def test_threshold_write_inside_triggers_passes(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/runtime/triggers.py",
            """
            class Policy:
                def observe(self, metrics):
                    self.count_threshold = 8
                    self.trigger_refreshes = 1
            """,
        )
        assert findings == []

    def test_out_of_scope_paths_are_ignored(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "tests/test_mod.py",
            """
            def test_park(service):
                service._last_run_time = float("inf")
            """,
        )
        assert findings == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_trailing_comment_suppresses(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def go(make):
                return make(engine="turbo")  # replint: ignore[REP003]
            """,
        )
        assert findings == []

    def test_standalone_comment_covers_next_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def go(make):
                # replint: ignore[REP003]
                return make(engine="turbo")
            """,
        )
        assert findings == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "anywhere.py",
            """
            def go(make):
                return make(engine="turbo")  # replint: ignore[REP001]
            """,
        )
        assert rule_ids(findings) == ["REP003"]

    def test_parse_suppressions_multiple_ids(self):
        lines = ["x = 1  # replint: ignore[REP001, REP004]"]
        assert parse_suppressions(lines)[1] == frozenset({"REP001", "REP004"})


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip_partitions_findings(self, tmp_path):
        finding = Finding("pkg/mod.py", 3, 1, "REP003", "engine='turbo' ...")
        other = Finding("pkg/mod.py", 9, 1, "REP003", "engine='warp' ...")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, [finding])
        baseline = load_baseline(baseline_path)
        new, grandfathered = split_baseline([finding, other], baseline)
        assert grandfathered == [finding]
        assert new == [other]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == frozenset()

    def test_committed_baseline_loads(self):
        path = REPO_ROOT / "tools" / "replint" / "baseline.json"
        assert load_baseline(path) == frozenset()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        assert replint_run([str(tmp_path)]) == 0
        assert "replint: clean" in capsys.readouterr().out

    def test_exit_one_on_finding(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text(
            "def go(make):\n    return make(engine='turbo')\n", encoding="utf-8"
        )
        assert replint_run([str(tmp_path)]) == 1
        assert "REP003" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert replint_run([str(tmp_path / "missing")]) == 2

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        assert replint_run(["--select", "REP999", str(tmp_path)]) == 2

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text(
            "def go(make):\n    return make(engine='turbo')\n", encoding="utf-8"
        )
        assert replint_run(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "REP003"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text(
            "def go(make):\n    return make(engine='turbo')\n", encoding="utf-8"
        )
        baseline = tmp_path / "baseline.json"
        assert (
            replint_run(
                ["--write-baseline", "--baseline", str(baseline), str(tmp_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            replint_run(["--baseline", str(baseline), str(tmp_path)]) == 0
        )
        assert "suppressed by baseline" in capsys.readouterr().out


# ----------------------------------------------------------------------
# meta: the real repo is clean
# ----------------------------------------------------------------------
class TestRepoIsClean:
    def test_src_lints_clean_via_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.replint", "src/"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_full_tree_lints_clean_in_process(self):
        findings, errors = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            ALL_RULES,
            root=REPO_ROOT,
            project=PROJECT,
        )
        assert errors == []
        assert findings == []


# ----------------------------------------------------------------------
# REP004 fix regression: schedulers are deterministic without an rng
# ----------------------------------------------------------------------
class TestSchedulerDefaultRngDeterminism:
    @staticmethod
    def _problem():
        from repro.core import TimeSeries, flex_offer
        from repro.scheduling import Market, SchedulingProblem

        horizon = 48
        rng = np.random.default_rng(11)
        offers = tuple(
            flex_offer(
                [(0.5, 2.0)] * 2,
                earliest_start=int(rng.integers(0, 20)),
                latest_start=int(rng.integers(20, 40)),
            )
            for _ in range(6)
        )
        return SchedulingProblem(
            TimeSeries(0, np.full(horizon, 10.0)),
            offers,
            Market.flat(horizon),
        )

    def test_greedy_default_rng_is_reproducible(self):
        from repro.scheduling import RandomizedGreedyScheduler

        first = RandomizedGreedyScheduler().schedule(
            self._problem(), max_passes=3
        )
        second = RandomizedGreedyScheduler().schedule(
            self._problem(), max_passes=3
        )
        assert first.cost == second.cost
        self._assert_same_solution(first.solution, second.solution)

    def test_evolutionary_default_rng_is_reproducible(self):
        from repro.scheduling import EvolutionaryScheduler

        first = EvolutionaryScheduler().schedule(
            self._problem(), max_evaluations=60
        )
        second = EvolutionaryScheduler().schedule(
            self._problem(), max_evaluations=60
        )
        assert first.cost == second.cost
        self._assert_same_solution(first.solution, second.solution)

    @staticmethod
    def _assert_same_solution(a, b):
        np.testing.assert_array_equal(a.starts, b.starts)
        assert len(a.energies) == len(b.energies)
        for left, right in zip(a.energies, b.energies):
            np.testing.assert_array_equal(left, right)
