"""Observability subsystem: tracing, event log, export, and labeled metrics.

Covers the obs package end to end:

* labeled instruments and the gauge merge-policy / histogram-stratification
  semantics of :mod:`repro.runtime.metrics` (merge-order determinism);
* :class:`~repro.obs.Tracer` span nesting, ring retention, deterministic
  sampling, and the :class:`~repro.obs.NullTracer` no-op surface;
* the JSONL event log round trip and its schema;
* trace-context propagation across a BRP -> TSO -> BRP bus round trip,
  including a mid-stream node outage (dropped deliveries are traced, the
  survivor's causal chain stays complete);
* metrics exposition (text / JSON / Prometheus) through the ``exporter``
  registry kind, and the ``inspect`` CLI subcommand.
"""

import json

import pytest

from repro.__main__ import main
from repro.core.errors import ServiceError
from repro.obs import (
    EVENT_SCHEMA,
    TERMINAL_OFFER_STATES,
    JsonlWriter,
    NullTracer,
    TraceContext,
    Tracer,
    iter_events,
    load_trace,
    offer_chain,
    render_breakdown,
    render_metrics_json,
    render_offer_tree,
    render_prometheus,
)
from repro.runtime import (
    ClusterConfig,
    ClusterRuntime,
    LoadGenerator,
    MetricsRegistry,
    ObsConfig,
    ServiceConfig,
)
from repro.runtime.metrics import instrument_key


# ----------------------------------------------------------------------
# labeled metrics, gauge policies, merge determinism
# ----------------------------------------------------------------------
def test_instrument_key_sorts_labels():
    assert instrument_key("bus.sent", None) == "bus.sent"
    assert (
        instrument_key("stage.wall", {"stage": "agg", "brp": "b0"})
        == 'stage.wall{brp="b0",stage="agg"}'
    )


def test_labeled_instruments_are_distinct():
    registry = MetricsRegistry()
    registry.counter("bus.sent", labels={"type": "macro"}).inc(3)
    registry.counter("bus.sent", labels={"type": "sched"}).inc(5)
    snapshot = registry.as_dict()
    assert snapshot['bus.sent{type="macro"}'] == 3
    assert snapshot['bus.sent{type="sched"}'] == 5


def test_labeled_merge_is_label_aware():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("bus.sent", labels={"type": "macro"}).inc(2)
    b.counter("bus.sent", labels={"type": "macro"}).inc(3)
    b.counter("bus.sent", labels={"type": "sched"}).inc(7)
    merged = MetricsRegistry()
    merged.merge_from(a)
    merged.merge_from(b)
    snapshot = merged.as_dict()
    assert snapshot['bus.sent{type="macro"}'] == 5
    assert snapshot['bus.sent{type="sched"}'] == 7


def test_gauge_merge_policies():
    for policy, expected in (("sum", 12.0), ("last", 4.0), ("max", 8.0)):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g", merge=policy).set(8.0)
        b.gauge("g", merge=policy).set(4.0)
        merged = MetricsRegistry()
        merged.merge_from(a)
        merged.merge_from(b)
        assert merged.gauge("g", merge=policy).value == expected, policy


def test_gauge_merge_skips_untouched_sources():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.gauge("g", merge="last").set(8.0)
    b.gauge("g", merge="last")  # never set: must not clobber with 0.0
    merged = MetricsRegistry()
    merged.merge_from(a)
    merged.merge_from(b)
    assert merged.gauge("g", merge="last").value == 8.0


def test_gauge_conflicting_merge_policy_raises():
    registry = MetricsRegistry()
    registry.gauge("g", merge="last")
    with pytest.raises(ServiceError):
        registry.gauge("g", merge="max")


def test_histogram_merge_is_order_independent_past_saturation():
    """A->B and B->A merges yield the identical retained reservoir."""

    def build():
        fast, slow = MetricsRegistry(), MetricsRegistry()
        h_fast = fast.histogram("h", reservoir_size=100)
        h_slow = slow.histogram("h", reservoir_size=100)
        for i in range(1000):
            h_fast.observe(1.0 + (i % 7) * 0.01)
            h_slow.observe(20.0 + (i % 11) * 0.01)
        return fast, slow

    fast, slow = build()
    ab = MetricsRegistry()
    ab.merge_from(fast)
    ab.merge_from(slow)
    fast2, slow2 = build()
    ba = MetricsRegistry()
    ba.merge_from(slow2)
    ba.merge_from(fast2)

    h_ab = ab.histogram("h", reservoir_size=100)
    h_ba = ba.histogram("h", reservoir_size=100)
    assert h_ab.count == h_ba.count == 2000
    assert sorted(h_ab.observations) == sorted(h_ba.observations)
    # Stratification keeps both strata represented despite saturation.
    assert h_ab.quantile(0.25) < 2.0
    assert h_ab.quantile(0.75) > 19.0


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------
def test_spans_nest_and_link():
    tracer = Tracer()
    with tracer.span("outer", node="brp-0") as outer:
        with tracer.span("inner", node="brp-0") as inner:
            assert inner.parent_id == outer.span_id
            assert tracer.current_context("brp-0") == inner.context()
            inner.link(TraceContext("tso", 99))
    events = tracer.events
    assert [e["name"] for e in events] == ["inner", "outer"]
    assert events[0]["parent"] == outer.span_id
    assert events[0]["links"] == [{"node": "tso", "span": 99}]
    assert events[1]["parent"] is None
    assert tracer.current_span() is None


def test_ring_eviction_is_fifo_and_counted():
    tracer = Tracer(capacity=3)
    for oid in range(5):
        tracer.offer_event(oid, "submitted", node="n")
    assert tracer.evicted == 2
    assert [e["offer_id"] for e in tracer.events] == [2, 3, 4]
    assert [e["seq"] for e in tracer.events] == [2, 3, 4]


def test_sampling_is_deterministic_and_forceable():
    tracer = Tracer(sample_every=10)
    for oid in (5, 10, 15, 20):
        tracer.offer_event(oid, "submitted")
    assert [e["offer_id"] for e in tracer.events] == [10, 20]
    tracer.offer_event(7, "macro_commit", force=True)
    assert tracer.events[-1]["offer_id"] == 7


def test_null_tracer_is_inert():
    tracer = NullTracer()
    assert not tracer.enabled
    with tracer.span("anything") as span:
        span.link(TraceContext("x", 1))
        span.add_offer(3)
        assert span.context() is None
    tracer.offer_event(1, "submitted")
    tracer.bus_event("publish")
    tracer.trigger_event(node="n")
    assert tracer.events == ()
    assert not tracer.sampled(0)


def test_tracer_validation():
    with pytest.raises(ServiceError):
        Tracer(capacity=0)
    with pytest.raises(ServiceError):
        Tracer(sample_every=0)


def test_obs_config_builds_tracers():
    assert isinstance(ObsConfig().build_tracer(), NullTracer)
    tracer = ObsConfig(
        tracer="ring", sample_every=4, ring_capacity=128
    ).build_tracer()
    assert isinstance(tracer, Tracer)
    assert tracer.sample_every == 4 and tracer.capacity == 128
    with pytest.raises(ServiceError):
        ObsConfig(tracer="zipkin")
    with pytest.raises(ServiceError):
        ObsConfig(sample_every=0)


# ----------------------------------------------------------------------
# event log round trip
# ----------------------------------------------------------------------
def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    writer = JsonlWriter(str(path))
    tracer = Tracer(sink=writer)
    with tracer.span("stage", node="brp-0", labels={"stage": "aggregate"}):
        tracer.offer_event(42, "submitted", node="brp-0")
    writer.close()
    events = list(iter_events(str(path)))
    assert [e["event"] for e in events] == ["offer", "span"]
    for event in events:
        missing = set(EVENT_SCHEMA[event["event"]]) - set(event)
        assert not missing, missing
    assert events == list(tracer.events)


# ----------------------------------------------------------------------
# cluster round trip with a mid-stream outage
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_outage_run():
    """A 2-BRP cluster run, tracing on, with brp-1 down mid-window."""
    tracer = Tracer(capacity=400_000)
    cluster = ClusterRuntime(
        ClusterConfig.uniform(2, ServiceConfig()), tracer=tracer
    )
    cluster.driver.schedule_at(
        20.0, lambda: cluster.set_unreachable("brp-1")
    )
    cluster.driver.schedule_at(
        40.0, lambda: cluster.set_unreachable("brp-1", False)
    )
    streams = {
        name: LoadGenerator(rate_per_hour=240.0, seed=i).stream(0.0, 60.0)
        for i, name in enumerate(cluster.clients)
    }
    report = cluster.run(streams, 60.0)
    cluster.trace_shutdown()
    return cluster, tracer, report


def test_outage_run_traces_drops(traced_outage_run):
    cluster, tracer, report = traced_outage_run
    drops = [
        e
        for e in tracer.events
        if e["event"] == "bus" and e["action"] == "drop"
    ]
    assert drops, "outage window produced no traced drops"
    assert all(e["detail"]["reason"].startswith("unreachable") for e in drops)
    assert report.bus_dropped == len(drops)
    dropped_counter = sum(
        value
        for key, value in cluster.adapter.metrics.as_dict().items()
        if key.startswith("bus.dropped")
    )
    assert dropped_counter == report.bus_dropped


def test_offer_chain_survives_round_trip(traced_outage_run):
    _, tracer, _ = traced_outage_run
    events = tracer.events
    remote = [
        e
        for e in events
        if e["event"] == "offer"
        and e["state"] == "remote_commit"
        and e["node"] == "brp-0"
    ]
    assert remote, "no TSO schedule round-tripped back to brp-0"
    chain = offer_chain(events, remote[0]["offer_id"])
    states = [e.get("state") for e in chain if e["event"] == "offer"]
    for needed in ("submitted", "accepted", "aggregated", "scheduled",
                   "aggregated_into", "macro_received", "macro_scheduled",
                   "remote_commit"):
        assert needed in states, f"chain is missing {needed}"
    nodes = {e["node"] for e in chain}
    assert "tso" in nodes and "brp-0" in nodes
    # The chain crossed the bus in both directions.
    bus_types = {
        e["type"] for e in chain if e["event"] == "bus"
    }
    assert bus_types == {"macro-flex-offer", "scheduled-macro-flex-offer"}


def test_every_submission_reaches_a_terminal_state(traced_outage_run):
    _, tracer, _ = traced_outage_run
    offers = [e for e in tracer.events if e["event"] == "offer"]
    submitted = {e["offer_id"] for e in offers if e["state"] == "submitted"}
    terminal = {
        e["offer_id"]
        for e in offers
        if e["state"] in TERMINAL_OFFER_STATES
    }
    assert submitted, "no offers traced"
    assert submitted <= terminal


def test_tso_spans_link_back_to_brp_snapshots(traced_outage_run):
    _, tracer, _ = traced_outage_run
    tso_spans = [
        e
        for e in tracer.events
        if e["event"] == "span" and e["node"] == "tso"
    ]
    assert tso_spans
    linked_nodes = {
        link["node"] for span in tso_spans for link in span["links"]
    }
    assert "brp-0" in linked_nodes


def test_message_context_rides_the_bus(traced_outage_run):
    _, tracer, _ = traced_outage_run
    delivers = [
        e
        for e in tracer.events
        if e["event"] == "bus"
        and e["action"] == "deliver"
        and e["recipient"] == "tso"
    ]
    assert delivers
    assert all(e["ctx"] is not None for e in delivers)
    assert {e["ctx"]["node"] for e in delivers} <= {"brp-0", "brp-1"}


def test_breakdown_and_offer_tree_render(traced_outage_run):
    _, tracer, _ = traced_outage_run
    events = tracer.events
    breakdown = render_breakdown(events)
    assert "tso" in breakdown and "schedule" in breakdown
    remote = next(
        e
        for e in events
        if e["event"] == "offer" and e["state"] == "remote_commit"
    )
    tree = render_offer_tree(events, remote["offer_id"])
    assert "submitted" in tree and "remote_commit" in tree


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def test_prometheus_rendering():
    registry = MetricsRegistry()
    registry.counter("bus.sent", labels={"type": "macro"}).inc(4)
    registry.gauge("runtime.live_offers").set(17)
    hist = registry.histogram("stage.wall_seconds", labels={"brp": "b0"})
    for value in (0.1, 0.2, 0.3):
        hist.observe(value)
    text = render_prometheus(registry)
    assert "# TYPE bus_sent counter" in text
    assert 'bus_sent{type="macro"} 4' in text
    assert "runtime_live_offers 17" in text
    assert "# TYPE stage_wall_seconds summary" in text
    assert 'stage_wall_seconds{brp="b0",quantile="0.5"}' in text
    assert 'stage_wall_seconds_count{brp="b0"} 3' in text


def test_json_rendering_parses():
    registry = MetricsRegistry()
    registry.counter("c").inc(2)
    registry.histogram("h").observe(1.0)
    payload = json.loads(render_metrics_json(registry))
    assert payload["c"] == 2
    assert payload["h"]["count"] == 1


def test_exporters_resolve_through_registry():
    from repro.api import KIND_EXPORTER, default_registry

    registry = MetricsRegistry()
    registry.counter("c").inc(1)
    for name in ("text", "json", "prometheus"):
        render = default_registry().create(KIND_EXPORTER, name)
        assert "c" in render(registry)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_trace_and_inspect(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    metrics_json = tmp_path / "metrics.json"
    code = main(
        [
            "loadtest",
            "--rate", "40", "--duration", "24", "--seed", "1",
            "--batch", "8", "--passes", "1", "--brps", "2",
            "--trace", str(trace),
            "--metrics-json", str(metrics_json),
        ]
    )
    assert code == 0
    capsys.readouterr()
    events = load_trace(str(trace))
    assert events
    snapshot = json.loads(metrics_json.read_text())
    assert any(key.startswith("bus.") for key in snapshot)

    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "node" in out and "bus action" in out

    offer_id = next(
        e["offer_id"] for e in events if e["event"] == "offer"
    )
    assert main(["inspect", str(trace), "--offer", str(offer_id)]) == 0
    out = capsys.readouterr().out
    assert f"offer {offer_id}" in out


def test_cli_inspect_missing_file(capsys):
    assert main(["inspect", "/nonexistent/trace.jsonl"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_cli_log_json_streams_events(capsys):
    code = main(
        [
            "loadtest",
            "--rate", "30", "--duration", "12", "--seed", "1",
            "--batch", "8", "--passes", "1",
            "--log-json", "--trace-sample", "5",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    lines = [line for line in captured.out.splitlines() if line.strip()]
    assert lines, "no JSONL on stdout"
    for line in lines:
        record = json.loads(line)
        assert record["event"] in EVENT_SCHEMA
    # Human-facing report moved to stderr.
    assert "simulated duration" in captured.err


def test_cli_rejects_unknown_exporter(capsys):
    code = main(
        ["loadtest", "--duration", "6", "--metrics-format", "nope"]
    )
    assert code == 2
    assert "unknown exporter" in capsys.readouterr().err
