"""Tests for flexibility potentials, pricing, acceptance and negotiation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScheduledFlexOffer, flex_offer
from repro.core.errors import NegotiationError
from repro.negotiation import (
    AcceptancePolicy,
    Decision,
    MonetizeFlexibilityPolicy,
    Negotiator,
    PotentialModel,
    ProfitSharingPolicy,
    sigmoid_potential,
)


def make_offer(tf=16, energy_flex=1.0, deadline=None, duration=4):
    return flex_offer(
        [(1.0, 1.0 + energy_flex)] * duration,
        earliest_start=100,
        latest_start=100 + tf,
        assignment_before=deadline,
    )


class TestSigmoid:
    def test_midpoint_is_half(self):
        assert sigmoid_potential(5.0, 5.0, 2.0) == pytest.approx(0.5)

    def test_monotone(self):
        values = [sigmoid_potential(x, 5.0, 2.0) for x in range(0, 11)]
        assert values == sorted(values)

    def test_bounded(self):
        assert 0.0 <= sigmoid_potential(-1e9, 0.0, 1.0) <= 1.0
        assert sigmoid_potential(1e9, 0.0, 1.0) == 1.0

    def test_rejects_bad_steepness(self):
        with pytest.raises(NegotiationError):
            sigmoid_potential(1.0, 0.0, 0.0)


class TestPotentialModel:
    def test_more_time_flex_more_potential(self):
        model = PotentialModel()
        low = model.potentials(make_offer(tf=2), now=0)
        high = model.potentials(make_offer(tf=30), now=0)
        assert high.scheduling > low.scheduling

    def test_assignment_marginalised_at_trading_lead(self):
        model = PotentialModel(trading_lead_slices=10)
        near = model.potentials(make_offer(tf=16, deadline=110), now=100)
        far = model.potentials(make_offer(tf=16, deadline=116), now=60)
        # both hit the cap (10 vs capped 56): same potential
        assert far.assignment == pytest.approx(near.assignment)

    def test_no_scheduling_flex_low_potential(self):
        model = PotentialModel()
        p = model.potentials(make_offer(tf=0), now=0)
        assert p.scheduling < 0.1

    def test_energy_capped_at_grid_capacity(self):
        model = PotentialModel(grid_capacity_kwh=2.0)
        small = model.potentials(make_offer(energy_flex=0.5), now=0)
        huge = model.potentials(make_offer(energy_flex=100.0), now=0)
        assert huge.energy == pytest.approx(
            sigmoid_potential(2.0, model.energy_midpoint, model.energy_steepness)
        )
        assert huge.energy >= small.energy

    def test_invalid_configuration(self):
        with pytest.raises(NegotiationError):
            PotentialModel(trading_lead_slices=-1)
        with pytest.raises(NegotiationError):
            PotentialModel(grid_capacity_kwh=0)


class TestMonetizeFlexibility:
    def test_value_increases_with_flexibility(self):
        policy = MonetizeFlexibilityPolicy()
        inflexible = make_offer(tf=0, energy_flex=0.0)
        flexible = make_offer(tf=30, energy_flex=5.0)
        assert policy.value(flexible, 0) > policy.value(inflexible, 0)

    def test_quote_below_value(self):
        policy = MonetizeFlexibilityPolicy()
        offer = make_offer()
        quote = policy.quote(offer, 0, margin=0.25)
        assert quote.amount_eur == pytest.approx(0.75 * policy.value(offer, 0))
        assert quote.is_binding

    def test_weight_validation(self):
        with pytest.raises(NegotiationError):
            MonetizeFlexibilityPolicy(
                assignment_weight=0, scheduling_weight=0, energy_weight=0
            )
        with pytest.raises(NegotiationError):
            MonetizeFlexibilityPolicy(assignment_weight=-1)

    def test_margin_validation(self):
        with pytest.raises(NegotiationError):
            MonetizeFlexibilityPolicy().quote(make_offer(), 0, margin=1.0)

    @settings(max_examples=40, deadline=None)
    @given(tf=st.integers(0, 60), eflex=st.floats(0, 20), now=st.integers(0, 99))
    def test_value_always_bounded(self, tf, eflex, now):
        policy = MonetizeFlexibilityPolicy(value_scale_eur=2.0)
        value = policy.value(make_offer(tf=tf, energy_flex=eflex), now)
        max_value = 2.0 * (0.2 + 0.5 + 0.3)
        assert 0.0 <= value <= max_value


class TestProfitSharing:
    def test_shares_positive_profit(self):
        offer = make_offer(tf=10, energy_flex=0.0)
        executed = ScheduledFlexOffer.at_minimum(offer, start=105)
        # executing later is 10 EUR cheaper for the BRP
        oracle = lambda s: 100.0 if s.start == offer.earliest_start else 90.0
        quote = ProfitSharingPolicy(share=0.5).settle(executed, oracle)
        assert quote.amount_eur == pytest.approx(5.0)
        assert not quote.is_binding

    def test_no_negative_compensation(self):
        offer = make_offer(tf=10, energy_flex=0.0)
        executed = ScheduledFlexOffer.at_minimum(offer, start=105)
        oracle = lambda s: 100.0 if s.start == offer.earliest_start else 120.0
        quote = ProfitSharingPolicy(share=0.5).settle(executed, oracle)
        assert quote.amount_eur == 0.0

    def test_share_validation(self):
        with pytest.raises(NegotiationError):
            ProfitSharingPolicy(share=1.5)


class TestAcceptance:
    def test_accepts_valuable_offer(self):
        verdict = AcceptancePolicy().decide(make_offer(tf=30, energy_flex=5.0), now=0)
        assert verdict.accepted
        assert verdict.decision is Decision.ACCEPTED

    def test_rejects_worthless_offer(self):
        policy = AcceptancePolicy(processing_cost_eur=0.5)
        verdict = policy.decide(make_offer(tf=0, energy_flex=0.0), now=0)
        assert verdict.decision is Decision.REJECTED_UNPROFITABLE

    def test_rejects_too_late(self):
        policy = AcceptancePolicy(min_processing_slices=10)
        offer = make_offer(tf=20, deadline=105)
        verdict = policy.decide(offer, now=100)
        assert verdict.decision is Decision.REJECTED_TOO_LATE

    def test_validation(self):
        with pytest.raises(NegotiationError):
            AcceptancePolicy(processing_cost_eur=-1)


class TestNegotiator:
    def test_agreement_on_valuable_offer(self):
        outcome = Negotiator().negotiate(
            make_offer(tf=30, energy_flex=5.0), now=0,
            prosumer_reservation_eur=0.1,
        )
        assert outcome.agreed
        assert outcome.price_eur >= 0.1
        assert outcome.rounds >= 1

    def test_price_never_exceeds_brp_ceiling(self):
        policy = AcceptancePolicy()
        offer = make_offer(tf=30, energy_flex=5.0)
        ceiling = (
            policy.pricing.value(offer, 0) - policy.processing_cost_eur
        )
        outcome = Negotiator(policy).negotiate(
            offer, now=0, prosumer_reservation_eur=0.0
        )
        assert outcome.price_eur <= ceiling + 1e-9

    def test_rejected_offer_never_negotiated(self):
        policy = AcceptancePolicy(min_processing_slices=50)
        outcome = Negotiator(policy).negotiate(
            make_offer(tf=20, deadline=110), now=100
        )
        assert outcome.rejected
        assert outcome.decision is Decision.REJECTED_TOO_LATE
        assert outcome.rounds == 0

    def test_unreachable_reservation_fails(self):
        outcome = Negotiator().negotiate(
            make_offer(tf=30, energy_flex=5.0), now=0,
            prosumer_reservation_eur=1e6,
        )
        assert outcome.rejected

    def test_parameter_validation(self):
        with pytest.raises(NegotiationError):
            Negotiator(concession=0.0)
        with pytest.raises(NegotiationError):
            Negotiator(max_rounds=0)
