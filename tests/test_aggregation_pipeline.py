"""Tests for group-builder, bin-packer, thresholds and the full pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import flex_offer
from repro.core.errors import AggregationError
from repro.aggregation import (
    P0,
    P1,
    P2,
    P3,
    AggregationParameters,
    AggregationPipeline,
    BinPacker,
    BinPackerBounds,
    FlexOfferUpdate,
    GroupBuilder,
    UpdateKind,
    aggregate_from_scratch,
    evaluate_aggregation,
    paper_combinations,
)
from repro.aggregation.updates import AggregateUpdate, DirtySet, GroupUpdate


def _offer(est, tf, duration=2, lo=1.0, hi=2.0, **kw):
    return flex_offer(
        [(lo, hi)] * duration, earliest_start=est, latest_start=est + tf, **kw
    )


class TestAggregationParameters:
    def test_paper_combinations_names(self):
        assert [p.name for p in paper_combinations()] == ["P0", "P1", "P2", "P3"]

    def test_zero_tolerance_separates_values(self):
        assert P0.group_key(_offer(10, 4)) != P0.group_key(_offer(11, 4))
        assert P0.group_key(_offer(10, 4)) != P0.group_key(_offer(10, 5))
        assert P0.group_key(_offer(10, 4)) == P0.group_key(_offer(10, 4))

    def test_tolerance_widens_cells(self):
        p = AggregationParameters(start_after_tolerance=4)
        assert p.group_key(_offer(10, 0)) == p.group_key(_offer(13, 0))

    def test_none_disables_attribute(self):
        p = AggregationParameters(None, None)
        assert p.compatible(_offer(0, 0), _offer(500, 12))

    def test_cell_deviation_bounded_by_tolerance(self):
        p = AggregationParameters(start_after_tolerance=4, time_flexibility_tolerance=2)
        a, b = _offer(10, 4), _offer(14, 6)
        if p.compatible(a, b):
            assert abs(a.earliest_start - b.earliest_start) <= 4
            assert abs(a.time_flexibility - b.time_flexibility) <= 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            AggregationParameters(start_after_tolerance=-1)

    def test_duration_tolerance_key(self):
        p = AggregationParameters(None, None, duration_tolerance=0)
        assert not p.compatible(_offer(0, 0, duration=2), _offer(0, 0, duration=3))


class TestGroupBuilder:
    def test_accumulate_then_flush(self):
        gb = GroupBuilder(P0)
        gb.accumulate(FlexOfferUpdate.insert(_offer(10, 4)))
        assert gb.pending_count == 1
        assert gb.group_count == 0  # nothing processed yet
        updates = gb.flush()
        assert gb.pending_count == 0
        assert [u.kind for u in updates] == [UpdateKind.CREATED]
        assert gb.offer_count == 1

    def test_same_cell_modifies_group(self):
        gb = GroupBuilder(P0)
        gb.accumulate(FlexOfferUpdate.insert(_offer(10, 4)))
        gb.flush()
        gb.accumulate(FlexOfferUpdate.insert(_offer(10, 4)))
        updates = gb.flush()
        assert [u.kind for u in updates] == [UpdateKind.MODIFIED]
        assert updates[0].size == 2

    def test_delete_last_member_deletes_group(self):
        gb = GroupBuilder(P0)
        fo = _offer(10, 4)
        gb.accumulate(FlexOfferUpdate.insert(fo))
        gb.flush()
        gb.accumulate(FlexOfferUpdate.delete(fo))
        updates = gb.flush()
        assert [u.kind for u in updates] == [UpdateKind.DELETED]
        assert gb.group_count == 0

    def test_insert_and_delete_same_flush_emits_nothing(self):
        # A group created and emptied within one flush was never visible to
        # downstream components, so no update may be emitted for it (a
        # DELETED here would crash the n-to-1 aggregator on an unknown group).
        gb = GroupBuilder(P0)
        fo = _offer(10, 4)
        gb.accumulate(FlexOfferUpdate.insert(fo))
        gb.accumulate(FlexOfferUpdate.delete(fo))
        assert gb.flush() == []
        assert gb.group_count == 0
        assert gb.offer_count == 0

    def test_empty_and_repopulate_same_flush_is_modification(self):
        gb = GroupBuilder(P0)
        first = _offer(10, 4)
        gb.accumulate(FlexOfferUpdate.insert(first))
        gb.flush()
        replacement = _offer(10, 4)
        gb.accumulate(FlexOfferUpdate.delete(first))
        gb.accumulate(FlexOfferUpdate.insert(replacement))
        updates = gb.flush()
        assert [u.kind for u in updates] == [UpdateKind.MODIFIED]
        assert updates[0].offers == (replacement,)

    def test_delete_unknown_offer_raises(self):
        gb = GroupBuilder(P0)
        gb.accumulate(FlexOfferUpdate.delete(_offer(10, 4)))
        with pytest.raises(AggregationError):
            gb.flush()

    def test_double_insert_raises(self):
        gb = GroupBuilder(P0)
        fo = _offer(10, 4)
        gb.accumulate_all([FlexOfferUpdate.insert(fo), FlexOfferUpdate.insert(fo)])
        with pytest.raises(AggregationError):
            gb.flush()

    def test_groups_snapshot(self):
        gb = GroupBuilder(P0)
        gb.accumulate_all(
            FlexOfferUpdate.insert(o) for o in [_offer(10, 4), _offer(20, 4)]
        )
        gb.flush()
        groups = gb.groups()
        assert len(groups) == 2
        assert all(len(v) == 1 for v in groups.values())


class TestBinPacker:
    def _group(self, n, gid="g"):
        return GroupUpdate(
            UpdateKind.CREATED, gid, tuple(_offer(10, 4) for _ in range(n))
        )

    def test_count_bound_splits_group(self):
        packer = BinPacker(BinPackerBounds("count", maximum=3))
        updates = packer.process([self._group(8)])
        sizes = sorted(u.size for u in updates)
        assert sum(sizes) == 8
        assert max(sizes) <= 3
        assert packer.subgroup_count == 3

    def test_undersized_tail_merged_when_possible(self):
        packer = BinPacker(BinPackerBounds("count", minimum=2, maximum=4))
        updates = packer.process([self._group(5)])
        sizes = sorted(u.size for u in updates)
        assert sizes == [2, 3] or sizes == [1, 4]  # tail below min is folded
        assert min(sizes) >= 2

    def test_energy_bound(self):
        # each offer has max 2.0 kWh/slice * 2 slices = 4 kWh
        packer = BinPacker(BinPackerBounds("energy", maximum=8.0))
        updates = packer.process([self._group(5)])
        assert all(u.size <= 2 for u in updates)

    def test_modification_reemits_changed_bins_only(self):
        packer = BinPacker(BinPackerBounds("count", maximum=2))
        offers = [_offer(10, 4) for _ in range(4)]
        packer.process([GroupUpdate(UpdateKind.CREATED, "g", tuple(offers))])
        # drop one offer: second bin shrinks, first is unchanged
        updates = packer.process(
            [GroupUpdate(UpdateKind.MODIFIED, "g", tuple(offers[:3]))]
        )
        changed = {u.group_id: u.kind for u in updates}
        assert "g#1" in changed
        assert "g#0" not in changed

    def test_group_delete_removes_all_bins(self):
        packer = BinPacker(BinPackerBounds("count", maximum=2))
        packer.process([self._group(4)])
        updates = packer.process([GroupUpdate(UpdateKind.DELETED, "g", ())])
        assert {u.kind for u in updates} == {UpdateKind.DELETED}
        assert packer.subgroup_count == 0

    def test_unknown_property_rejected(self):
        with pytest.raises(AggregationError):
            BinPackerBounds("weirdness")

    def test_inverted_bounds_rejected(self):
        with pytest.raises(AggregationError):
            BinPackerBounds("count", minimum=5, maximum=2)


class TestPipeline:
    def test_identical_offers_collapse_to_one(self):
        offers = [_offer(10, 8) for _ in range(100)]
        aggregates = aggregate_from_scratch(offers, P0)
        assert len(aggregates) == 1
        assert aggregates[0].member_count == 100

    def test_binpacker_limits_collapse(self):
        offers = [_offer(10, 8) for _ in range(100)]
        aggregates = aggregate_from_scratch(
            offers, P0, BinPackerBounds("count", maximum=10)
        )
        assert len(aggregates) == 10

    def test_p0_has_zero_flexibility_loss(self):
        offers = [_offer(10, 8) for _ in range(10)] + [_offer(12, 6) for _ in range(10)]
        quality = evaluate_aggregation(aggregate_from_scratch(offers, P0))
        assert quality.total_time_flexibility_loss == 0
        assert quality.input_count == 20

    def test_incremental_matches_from_scratch(self):
        offers = [_offer(est, tf) for est in range(0, 30, 3) for tf in (2, 5, 9)]
        batch = {
            (a.earliest_start, a.time_flexibility, a.member_count)
            for a in aggregate_from_scratch(offers, P3)
        }
        pipe = AggregationPipeline(P3)
        for o in offers:  # insert one at a time with a run per insert
            pipe.submit_inserts([o])
            pipe.run()
        incremental = {
            (a.earliest_start, a.time_flexibility, a.member_count)
            for a in pipe.aggregates
        }
        assert batch == incremental

    def test_delete_shrinks_pool(self):
        offers = [_offer(10, 8) for _ in range(5)]
        pipe = AggregationPipeline(P0)
        pipe.submit_inserts(offers)
        pipe.run()
        pipe.submit_deletes(offers[:2])
        pipe.run()
        assert pipe.input_count == 3
        assert pipe.aggregates[0].member_count == 3

    def test_updates_stream_kinds(self):
        pipe = AggregationPipeline(P0)
        fo = _offer(10, 8)
        pipe.submit_inserts([fo])
        created = pipe.run()
        assert [u.kind for u in created] == [UpdateKind.CREATED]
        pipe.submit_deletes([fo])
        deleted = pipe.run()
        assert [u.kind for u in deleted] == [UpdateKind.DELETED]

    def test_add_remove_readd_incremental_lifecycle(self):
        """An offer added, removed, and re-added flows incrementally.

        Each phase runs the pipeline separately (no batching effects) and
        must emit the right update kind while keeping a co-grouped sibling's
        aggregate membership consistent throughout.
        """
        pipe = AggregationPipeline(P0)
        sibling = _offer(10, 8)
        volatile = _offer(10, 8)

        pipe.submit_inserts([sibling])
        first = pipe.run()
        assert [u.kind for u in first] == [UpdateKind.CREATED]
        gid = first[0].group_id
        assert first[0].aggregate.member_count == 1

        # Add: same cell, so the existing group is modified, not recreated.
        pipe.submit_inserts([volatile])
        added = pipe.run()
        assert [(u.kind, u.group_id) for u in added] == [
            (UpdateKind.MODIFIED, gid)
        ]
        assert added[0].aggregate.member_count == 2

        # Remove: back to one member; the group survives.
        pipe.submit_deletes([volatile])
        removed = pipe.run()
        assert [(u.kind, u.group_id) for u in removed] == [
            (UpdateKind.MODIFIED, gid)
        ]
        assert removed[0].aggregate.member_count == 1
        assert removed[0].aggregate.members[0].offer_id == sibling.offer_id

        # Re-add the same offer (identity may return after a withdrawal).
        pipe.submit_inserts([volatile])
        readded = pipe.run()
        assert [(u.kind, u.group_id) for u in readded] == [
            (UpdateKind.MODIFIED, gid)
        ]
        assert readded[0].aggregate.member_count == 2
        assert pipe.input_count == 2

        # The maintained aggregate equals a from-scratch rebuild.
        rebuilt = aggregate_from_scratch([sibling, volatile], P0)
        maintained = pipe.aggregates
        assert len(rebuilt) == len(maintained) == 1
        assert rebuilt[0].profile == maintained[0].profile
        assert rebuilt[0].earliest_start == maintained[0].earliest_start
        assert rebuilt[0].time_flexibility == maintained[0].time_flexibility

    def test_add_remove_readd_last_member_recreates_group(self):
        pipe = AggregationPipeline(P0)
        fo = _offer(10, 8)
        pipe.submit_inserts([fo])
        assert [u.kind for u in pipe.run()] == [UpdateKind.CREATED]
        pipe.submit_deletes([fo])
        assert [u.kind for u in pipe.run()] == [UpdateKind.DELETED]
        assert pipe.input_count == 0
        pipe.submit_inserts([fo])
        recreated = pipe.run()
        assert [u.kind for u in recreated] == [UpdateKind.CREATED]
        assert recreated[0].aggregate.member_count == 1


@settings(max_examples=60, deadline=None)
@given(
    ests=st.lists(st.integers(0, 40), min_size=1, max_size=40),
    tol=st.integers(0, 6),
)
def test_group_members_deviate_at_most_tolerance(ests, tol):
    """Grid grouping never mixes offers whose start-after times differ by
    more than the tolerance."""
    params = AggregationParameters(start_after_tolerance=tol, name="t")
    offers = [_offer(est, 4) for est in ests]
    for agg in aggregate_from_scratch(offers, params):
        starts = [m.earliest_start for m in agg.members]
        assert max(starts) - min(starts) <= tol


@settings(max_examples=60, deadline=None)
@given(ests=st.lists(st.integers(0, 20), min_size=1, max_size=30))
def test_compression_accounting(ests):
    """Member counts across aggregates always sum to the input count."""
    offers = [_offer(est, 4) for est in ests]
    aggs = aggregate_from_scratch(offers, P2)
    quality = evaluate_aggregation(aggs)
    assert quality.input_count == len(offers)
    assert quality.aggregate_count == len(aggs)
    assert quality.compression_ratio == pytest.approx(len(offers) / len(aggs))


class TestPriceAwareGrouping:
    """Price flexibility as a grouping criterion (§4 research direction)."""

    def test_exact_price_separates_tariffs(self):
        params = AggregationParameters(
            None, None, unit_price_tolerance=0.0, name="price"
        )
        cheap = _offer(10, 4)
        dear = flex_offer(
            [(1.0, 2.0)] * 2, earliest_start=10, latest_start=14, unit_price=0.5
        )
        assert not params.compatible(cheap, dear)
        assert params.compatible(cheap, _offer(99, 7))  # price-only grouping

    def test_price_tolerance_band(self):
        params = AggregationParameters(None, None, unit_price_tolerance=0.1)
        a = flex_offer([(1, 2)], earliest_start=0, latest_start=0, unit_price=0.02)
        b = flex_offer([(1, 2)], earliest_start=0, latest_start=0, unit_price=0.08)
        c = flex_offer([(1, 2)], earliest_start=0, latest_start=0, unit_price=0.15)
        assert params.compatible(a, b)
        assert not params.compatible(a, c)

    def test_negative_price_tolerance_rejected(self):
        with pytest.raises(ValueError):
            AggregationParameters(unit_price_tolerance=-0.1)


class TestDirtySet:
    def _update(self, kind, gid):
        return AggregateUpdate(kind, gid, lambda: None)

    def test_from_updates_buckets_by_kind(self):
        dirty = DirtySet.from_updates(
            [
                self._update(UpdateKind.CREATED, "a"),
                self._update(UpdateKind.MODIFIED, "b"),
                self._update(UpdateKind.DELETED, "c"),
            ]
        )
        assert dirty.created == {"a"}
        assert dirty.changed == {"b"}
        assert dirty.deleted == {"c"}
        assert dirty.group_ids == {"a", "b", "c"}
        assert dirty
        assert not DirtySet()

    def test_merged_buckets_by_latest_effect(self):
        first = DirtySet(
            created=frozenset({"a"}),
            changed=frozenset({"b"}),
            deleted=frozenset({"c"}),
        )
        second = DirtySet(
            created=frozenset({"c"}), deleted=frozenset({"a", "b"})
        )
        merged = first.merged(second)
        assert merged.created == {"c"}  # delete -> re-create stays created
        assert merged.deleted == {"a", "b"}  # create/change -> delete
        assert merged.changed == frozenset()
        # group_ids readers see the union either way.
        assert merged.group_ids == {"a", "b", "c"}

    def test_pipeline_reports_flush_dirty_set(self):
        pipe = AggregationPipeline(P0)
        fo = _offer(10, 8)
        pipe.submit_inserts([fo])
        updates = pipe.run()
        gid = updates[0].group_id
        assert pipe.last_dirty.created == {gid}
        sibling = _offer(10, 8)
        pipe.submit_inserts([sibling])
        pipe.run()
        assert pipe.last_dirty.changed == {gid}
        pipe.submit_deletes([fo, sibling])
        pipe.run()
        assert pipe.last_dirty.deleted == {gid}
        pipe.run()  # nothing pending: the dirty set drains
        assert not pipe.last_dirty
