"""Tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timebase import TimeAxis
from repro.datagen import (
    CalendarModel,
    DayType,
    DemandModel,
    FlexOfferDatasetSpec,
    PowerCurve,
    TemperatureModel,
    WindFarmModel,
    WindSpeedModel,
    generate_flexoffer_dataset,
    household_archetypes,
    nrel_style_wind,
    paper_dataset,
    sample_archetype_offer,
    uk_style_demand,
)
from repro.datagen.demand import HALF_HOURLY
from repro.core.timebase import DEFAULT_AXIS


class TestCalendar:
    def setup_method(self):
        self.axis = TimeAxis(30)
        self.cal = CalendarModel(self.axis)

    def test_epoch_monday_is_workday(self):
        assert self.cal.day_type(0) == DayType.WORKDAY
        assert self.cal.is_working_day(0)

    def test_weekend_classification(self):
        per_day = self.axis.slices_per_day
        assert self.cal.day_type(5 * per_day) == DayType.SATURDAY
        assert self.cal.day_type(6 * per_day) == DayType.SUNDAY

    def test_holiday_dominates(self):
        # epoch 2010-01-04; New Year 2011 is a Saturday
        slice_ny = self.axis.to_slice(__import__("datetime").datetime(2011, 1, 1))
        assert self.cal.day_type(slice_ny) == DayType.HOLIDAY
        assert self.cal.is_holiday(slice_ny)


class TestWeather:
    def test_temperature_seasonal_swing(self):
        axis = TimeAxis(30)
        model = TemperatureModel(axis)
        rng = np.random.default_rng(0)
        year = model.generate(0, 365 * axis.slices_per_day, rng)
        per_day = axis.slices_per_day
        january = year.values[: 31 * per_day].mean()
        july = year.values[181 * per_day : 212 * per_day].mean()
        assert july > january + 5  # summers are warmer

    def test_wind_speed_non_negative(self):
        axis = TimeAxis(30)
        speeds = WindSpeedModel(axis).generate(0, 5000, np.random.default_rng(1))
        assert speeds.values.min() >= 0

    def test_reproducible_with_seed(self):
        axis = TimeAxis(30)
        a = TemperatureModel(axis).generate(0, 100, np.random.default_rng(3))
        b = TemperatureModel(axis).generate(0, 100, np.random.default_rng(3))
        assert a == b


class TestDemand:
    def test_demand_positive_and_scaled(self):
        demand = uk_style_demand(7)
        assert demand.values.min() > 0
        assert 500 < demand.mean() < 2500

    def test_daily_seasonality_dominates(self):
        """Autocorrelation at the daily lag should be strong."""
        demand = uk_style_demand(28).values
        per_day = HALF_HOURLY.slices_per_day
        x = demand - demand.mean()
        r_day = np.corrcoef(x[:-per_day], x[per_day:])[0, 1]
        assert r_day > 0.8

    def test_weekend_reduction(self):
        demand = uk_style_demand(28)
        per_day = HALF_HOURLY.slices_per_day
        days = demand.values.reshape(28, per_day).mean(axis=1)
        weekdays = np.mean([days[i] for i in range(28) if i % 7 < 5])
        weekends = np.mean([days[i] for i in range(28) if i % 7 >= 5])
        assert weekends < weekdays

    def test_evening_peak_shape(self):
        demand = uk_style_demand(14)
        per_day = HALF_HOURLY.slices_per_day
        profile = demand.values.reshape(14, per_day).mean(axis=0)
        evening = profile[int(0.70 * per_day) : int(0.85 * per_day)].max()
        night = profile[: int(0.2 * per_day)].mean()
        assert evening > 1.2 * night

    def test_return_temperature(self):
        model = DemandModel()
        demand, temp = model.generate(
            0, 100, np.random.default_rng(0), return_temperature=True
        )
        assert len(demand) == len(temp) == 100


class TestWind:
    def test_power_curve_regions(self):
        curve = PowerCurve(cut_in=3, rated_speed=12, cut_out=25, rated_power=2)
        speeds = np.array([0.0, 2.9, 3.0, 7.5, 12.0, 20.0, 25.0, 30.0])
        power = curve.power(speeds)
        assert power[0] == 0 and power[1] == 0  # below cut-in
        assert power[2] == 0  # exactly cut-in: ramp starts at zero
        assert 0 < power[3] < 2
        assert power[4] == pytest.approx(2)
        assert power[5] == pytest.approx(2)  # rated region
        assert power[6] == 0 and power[7] == 0  # cut-out

    def test_power_curve_validation(self):
        with pytest.raises(ValueError):
            PowerCurve(cut_in=10, rated_speed=5)
        with pytest.raises(ValueError):
            PowerCurve(rated_power=0)

    def test_wind_supply_bounded_by_rated(self):
        farm = WindFarmModel(axis=TimeAxis(30))
        supply = farm.generate(0, 2000, np.random.default_rng(5))
        cap = farm.n_turbines * farm.curve.rated_power * 0.5  # MWh per 30 min
        assert supply.values.min() >= 0
        assert supply.values.max() <= cap + 1e-9

    def test_wind_is_less_predictable_than_demand(self):
        """The property behind Fig. 4(b): daily-lag autocorrelation of wind
        is much weaker than demand's."""
        per_day = HALF_HOURLY.slices_per_day
        demand = uk_style_demand(28).values
        wind = nrel_style_wind(28).values
        def lag_corr(x, lag):
            x = x - x.mean()
            return np.corrcoef(x[:-lag], x[lag:])[0, 1]
        assert lag_corr(wind, per_day) < lag_corr(demand, per_day) - 0.3


class TestFlexOfferDataset:
    def test_deterministic_given_seed(self):
        a = paper_dataset(200, seed=9)
        b = paper_dataset(200, seed=9)
        assert [o.earliest_start for o in a] == [o.earliest_start for o in b]
        assert [o.time_flexibility for o in a] == [o.time_flexibility for o in b]

    def test_counts_and_validity(self):
        offers = paper_dataset(500)
        assert len(offers) == 500
        for o in offers:
            assert o.latest_start >= o.earliest_start
            assert o.duration >= 1

    def test_contains_duplicates_for_compression(self):
        """Many offers must share (start-after, time-flex) pairs, otherwise
        P0 aggregation could not compress at all."""
        offers = paper_dataset(5000, n_days=2)
        pairs = {(o.earliest_start, o.time_flexibility) for o in offers}
        assert len(pairs) < len(offers) / 2

    def test_mix_includes_production(self):
        offers = paper_dataset(5000)
        assert any(not o.is_consumption for o in offers)
        assert any(o.is_consumption for o in offers)

    def test_owner_labels_from_archetypes(self):
        offers = paper_dataset(2000)
        owners = {o.owner for o in offers}
        assert "ev_charger" in owners
        assert "washing_machine" in owners

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 300), seed=st.integers(0, 10_000))
    def test_any_spec_generates_valid_offers(self, n, seed):
        offers = generate_flexoffer_dataset(
            FlexOfferDatasetSpec(n_offers=n, n_days=3, seed=seed)
        )
        assert len(offers) == n
        for o in offers:
            assert o.earliest_start >= 0
            assert o.total_max_energy >= o.total_min_energy


class TestSeedDeterminismAudit:
    """Every generator must be reproducible from an explicit rng/seed.

    No module-level global RNG may be involved anywhere in ``datagen`` —
    streaming load generators and benchmarks depend on it.
    """

    def test_no_module_level_rng_in_datagen(self):
        import inspect

        import repro.datagen.calendar
        import repro.datagen.demand
        import repro.datagen.flexoffers
        import repro.datagen.weather
        import repro.datagen.wind

        for module in (
            repro.datagen.calendar,
            repro.datagen.demand,
            repro.datagen.flexoffers,
            repro.datagen.weather,
            repro.datagen.wind,
        ):
            source = inspect.getsource(module)
            # Global numpy RNG calls would break reproducibility; every
            # draw must go through an explicit Generator or seed.
            assert "np.random.seed" not in source
            assert "np.random.rand" not in source
            assert "random.random()" not in source
            for obj in vars(module).values():
                assert not isinstance(obj, np.random.Generator), (
                    f"{module.__name__} holds a module-level Generator"
                )

    def test_flexoffer_dataset_accepts_explicit_rng(self):
        spec = FlexOfferDatasetSpec(n_offers=50, n_days=2, seed=0)
        from_seed = generate_flexoffer_dataset(
            FlexOfferDatasetSpec(n_offers=50, n_days=2, seed=123)
        )
        from_rng = generate_flexoffer_dataset(spec, np.random.default_rng(123))
        assert [o.earliest_start for o in from_seed] == [
            o.earliest_start for o in from_rng
        ]
        assert [o.profile for o in from_seed] == [o.profile for o in from_rng]

    def test_demand_and_wind_accept_explicit_rng(self):
        d1 = uk_style_demand(2, seed=999)
        d2 = uk_style_demand(2, seed=0, rng=np.random.default_rng(999))
        np.testing.assert_array_equal(d1.values, d2.values)
        w1 = nrel_style_wind(2, seed=999)
        w2 = nrel_style_wind(2, seed=0, rng=np.random.default_rng(999))
        np.testing.assert_array_equal(w1.values, w2.values)

    def test_sample_archetype_offer_deterministic(self):
        archetype = household_archetypes(DEFAULT_AXIS)[0]
        a = sample_archetype_offer(
            archetype, np.random.default_rng(7), not_before=100
        )
        b = sample_archetype_offer(
            archetype, np.random.default_rng(7), not_before=100
        )
        assert a.earliest_start == b.earliest_start
        assert a.latest_start == b.latest_start
        assert a.profile == b.profile

    def test_sample_archetype_offer_respects_not_before(self):
        rng = np.random.default_rng(3)
        archetype = household_archetypes(DEFAULT_AXIS)[1]
        for _ in range(50):
            offer = sample_archetype_offer(archetype, rng, not_before=500)
            assert offer.earliest_start >= 500
            assert offer.creation_time <= offer.earliest_start
