"""Unit + property tests for the n-to-1 aggregator and disaggregation.

The central property is the paper's *disaggregation requirement*: every
schedule of an aggregate must map back to valid schedules of all members with
exactly the same per-slice total energy.  ``ScheduledFlexOffer`` validates
its constraints eagerly, so a successful round-trip is itself the proof.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ScheduledFlexOffer, flex_offer
from repro.core.errors import AggregationError, DisaggregationError
from repro.core.schedule import sum_profiles
from repro.aggregation import (
    AggregatedFlexOffer,
    NToOneAggregator,
    UpdateKind,
    aggregate_group,
    disaggregate,
)
from repro.aggregation.updates import GroupUpdate


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def offers_strategy(max_offers=6, max_duration=4):
    """Random small flex-offer groups with mixed consumption/production."""
    bound = st.floats(
        min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
    )
    slice_st = st.tuples(bound, bound).map(lambda t: (min(t), max(t)))
    profile_st = st.lists(slice_st, min_size=1, max_size=max_duration)
    offer_st = st.builds(
        lambda bounds, est, tf: flex_offer(
            bounds, earliest_start=est, latest_start=est + tf
        ),
        profile_st,
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=12),
    )
    return st.lists(offer_st, min_size=1, max_size=max_offers)


# ----------------------------------------------------------------------
# unit tests
# ----------------------------------------------------------------------
class TestAggregateGroup:
    def test_single_offer_aggregate_mirrors_offer(self):
        fo = flex_offer([(1, 2), (3, 4)], earliest_start=5, latest_start=9)
        agg = aggregate_group([fo])
        assert agg.earliest_start == 5
        assert agg.time_flexibility == 4
        assert agg.profile.min_energies() == (1, 3)
        assert agg.member_count == 1
        assert agg.time_flexibility_loss == 0

    def test_empty_group_rejected(self):
        with pytest.raises(AggregationError):
            aggregate_group([])

    def test_energy_sums_with_offsets(self):
        a = flex_offer([(1, 2), (1, 2)], earliest_start=10, latest_start=20)
        b = flex_offer([(2, 3)], earliest_start=11, latest_start=18)
        agg = aggregate_group([a, b])
        assert agg.earliest_start == 10
        assert agg.duration == 2  # b overlaps a's second slice
        assert agg.profile.min_energies() == (1, 3)
        assert agg.profile.max_energies() == (2, 5)

    def test_profile_extends_for_late_members(self):
        a = flex_offer([(1, 1)], earliest_start=0, latest_start=5)
        b = flex_offer([(1, 1)], earliest_start=3, latest_start=8)
        agg = aggregate_group([a, b])
        assert agg.duration == 4  # offsets 0 and 3, each 1 slice long
        assert agg.offsets == (0, 3)

    def test_time_flexibility_is_minimum(self):
        a = flex_offer([(1, 1)], earliest_start=0, latest_start=10)
        b = flex_offer([(1, 1)], earliest_start=2, latest_start=5)
        agg = aggregate_group([a, b])
        assert agg.time_flexibility == 3
        assert agg.time_flexibility_loss == (10 - 3) + (3 - 3)

    def test_assignment_deadline_is_earliest(self):
        a = flex_offer(
            [(1, 1)], earliest_start=5, latest_start=10, assignment_before=9
        )
        b = flex_offer(
            [(1, 1)], earliest_start=5, latest_start=10, assignment_before=7
        )
        agg = aggregate_group([a, b])
        assert agg.assignment_before == 7

    def test_unit_price_is_mean(self):
        a = flex_offer([(1, 1)], earliest_start=0, latest_start=0, unit_price=0.1)
        b = flex_offer([(1, 1)], earliest_start=0, latest_start=0, unit_price=0.3)
        assert aggregate_group([a, b]).unit_price == pytest.approx(0.2)

    def test_members_offsets_length_guard(self):
        fo = flex_offer([(1, 1)], earliest_start=0, latest_start=0)
        with pytest.raises(AggregationError):
            AggregatedFlexOffer(
                profile=fo.profile,
                earliest_start=0,
                latest_start=0,
                members=(fo,),
                offsets=(0, 1),
            )


class TestDisaggregation:
    def test_round_trip_energy_conservation(self):
        offers = [
            flex_offer([(1, 2), (1, 2)], earliest_start=10, latest_start=20),
            flex_offer([(2, 3), (0, 1)], earliest_start=12, latest_start=18),
        ]
        agg = aggregate_group(offers)
        scheduled = ScheduledFlexOffer.at_fraction(agg, 0.7, start=agg.earliest_start + 3)
        parts = disaggregate(scheduled)
        assert len(parts) == 2
        total = sum_profiles(parts)
        assert total.start == scheduled.start
        for got, want in zip(total.values, scheduled.energies):
            assert got == pytest.approx(want)

    def test_member_starts_shift_by_delta(self):
        offers = [
            flex_offer([(1, 1)], earliest_start=10, latest_start=20),
            flex_offer([(1, 1)], earliest_start=14, latest_start=19),
        ]
        agg = aggregate_group(offers)
        scheduled = ScheduledFlexOffer.at_minimum(agg, start=agg.earliest_start + 2)
        parts = disaggregate(scheduled)
        assert parts[0].start == 12
        assert parts[1].start == 16

    def test_rejects_plain_flexoffer(self):
        fo = flex_offer([(1, 1)], earliest_start=0, latest_start=0)
        with pytest.raises(DisaggregationError):
            disaggregate(ScheduledFlexOffer.at_minimum(fo))

    def test_fixed_slice_energy_must_match(self):
        offers = [flex_offer([(2, 2)], earliest_start=0, latest_start=0)]
        agg = aggregate_group(offers)
        good = ScheduledFlexOffer(agg, 0, (2.0,))
        assert disaggregate(good)[0].energies == (2.0,)


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(offers=offers_strategy(), delta_u=st.floats(0, 1), frac=st.floats(0, 1))
def test_disaggregation_requirement_holds(offers, delta_u, frac):
    """Any admissible aggregate schedule disaggregates into valid member
    schedules whose slice-wise sum equals the aggregate schedule."""
    agg = aggregate_group(offers)
    delta = round(delta_u * agg.time_flexibility)
    start = agg.earliest_start + delta
    scheduled = ScheduledFlexOffer.at_fraction(agg, frac, start=start)

    parts = disaggregate(scheduled)  # constructor validates every part

    assert len(parts) == len(offers)
    total = sum_profiles(parts)
    assert total.start == scheduled.start
    assert len(total) == agg.duration
    for got, want in zip(total.values, scheduled.energies):
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-6)


@settings(max_examples=120, deadline=None)
@given(offers=offers_strategy())
def test_aggregate_invariants(offers):
    """Structural invariants of the conservative aggregation."""
    agg = aggregate_group(offers)
    assert agg.time_flexibility == min(o.time_flexibility for o in offers)
    assert agg.earliest_start == min(o.earliest_start for o in offers)
    assert agg.duration >= max(o.duration for o in offers)
    assert agg.time_flexibility_loss >= 0
    assert agg.total_min_energy == pytest.approx(
        sum(o.total_min_energy for o in offers)
    )
    assert agg.total_max_energy == pytest.approx(
        sum(o.total_max_energy for o in offers)
    )


# ----------------------------------------------------------------------
# incremental aggregator maintenance
# ----------------------------------------------------------------------
class TestNToOneAggregator:
    def _upd(self, kind, gid, offers):
        return GroupUpdate(kind, gid, tuple(offers))

    def test_create_modify_delete_cycle(self):
        agg = NToOneAggregator()
        a = flex_offer([(1, 1)], earliest_start=0, latest_start=4)
        b = flex_offer([(1, 1)], earliest_start=0, latest_start=6)

        created = agg.process([self._upd(UpdateKind.CREATED, "g", [a])])
        assert [u.kind for u in created] == [UpdateKind.CREATED]
        assert agg.aggregate_count == 1

        modified = agg.process([self._upd(UpdateKind.MODIFIED, "g", [a, b])])
        assert [u.kind for u in modified] == [UpdateKind.MODIFIED]
        assert modified[0].aggregate.member_count == 2

        deleted = agg.process([self._upd(UpdateKind.DELETED, "g", [])])
        assert [u.kind for u in deleted] == [UpdateKind.DELETED]
        assert deleted[0].aggregate.member_count == 2  # the removed aggregate
        assert agg.aggregate_count == 0

    def test_delete_unknown_group_raises(self):
        agg = NToOneAggregator()
        with pytest.raises(AggregationError):
            agg.process([self._upd(UpdateKind.DELETED, "nope", [])])

    def test_rebuild_replaces_state(self):
        agg = NToOneAggregator()
        a = flex_offer([(1, 1)], earliest_start=0, latest_start=4)
        agg.process([self._upd(UpdateKind.CREATED, "g", [a])])
        agg.rebuild({"h": (a,)})
        assert agg.aggregate_count == 1
        assert [u.member_count for u in agg.aggregates()] == [1]


@settings(max_examples=60, deadline=None)
@given(
    offers=offers_strategy(max_offers=6),
    split=st.integers(1, 5),
    delta_u=st.floats(0, 1),
    frac=st.floats(0, 1),
)
def test_nested_disaggregation_conserves_energy(offers, split, delta_u, frac):
    """The TSO path: aggregates of aggregates disaggregate twice into valid
    micro schedules whose slice-wise sum equals the super-schedule."""
    k = min(split, len(offers))
    macro_a = aggregate_group(offers[:k])
    groups = [macro_a]
    if offers[k:]:
        groups.append(aggregate_group(offers[k:]))
    super_aggregate = aggregate_group(groups)

    delta = round(delta_u * super_aggregate.time_flexibility)
    scheduled = ScheduledFlexOffer.at_fraction(
        super_aggregate, frac, start=super_aggregate.earliest_start + delta
    )

    micro = []
    for scheduled_macro in disaggregate(scheduled):
        micro.extend(disaggregate(scheduled_macro))  # validates every micro

    assert len(micro) == len(offers)
    total = sum_profiles(micro)
    assert total.start == scheduled.start
    for got, want in zip(total.values, scheduled.energies):
        assert math.isclose(got, want, rel_tol=1e-9, abs_tol=1e-6)
