"""Unit + property tests for forecast accuracy metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ForecastingError
from repro.forecasting import mae, mape, mase, rmse, smape


class TestSmape:
    def test_perfect_forecast(self):
        assert smape([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_value(self):
        # |1-3|/(1+3) = 0.5 on a single point
        assert smape([1.0], [3.0]) == pytest.approx(0.5)

    def test_bounded_by_one(self):
        assert smape([1, 1], [-1, -1]) == pytest.approx(1.0)

    def test_both_zero_contributes_zero(self):
        assert smape([0, 1], [0, 1]) == 0.0

    def test_symmetry(self):
        a, b = [1.0, 4.0], [2.0, 3.0]
        assert smape(a, b) == pytest.approx(smape(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ForecastingError):
            smape([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ForecastingError):
            smape([], [])


class TestOtherMetrics:
    def test_mape(self):
        assert mape([2.0, 4.0], [1.0, 5.0]) == pytest.approx((0.5 + 0.25) / 2)

    def test_mape_skips_zero_actuals(self):
        assert mape([0.0, 2.0], [5.0, 1.0]) == pytest.approx(0.5)

    def test_mape_all_zero_rejected(self):
        with pytest.raises(ForecastingError):
            mape([0.0], [1.0])

    def test_rmse(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_mae(self):
        assert mae([0.0, 0.0], [3.0, -4.0]) == pytest.approx(3.5)

    def test_mase_beats_naive(self):
        actual = [1.0, 2.0, 1.5, 2.5]  # seasonal naive is imperfect here
        assert mase(actual, actual, season_length=2) == 0.0

    def test_mase_equal_to_naive_is_one(self):
        actual = np.array([1.0, 2.0, 2.0, 3.0])
        shifted = np.array([0.0, 0.0, 1.0, 2.0])  # seasonal naive with m=2
        value = mase(actual, shifted, season_length=2)
        assert value == pytest.approx(np.abs(actual - shifted).mean() / 1.0)

    def test_mase_needs_enough_data(self):
        with pytest.raises(ForecastingError):
            mase([1.0], [1.0], season_length=2)

    def test_mase_zero_naive_error_rejected(self):
        with pytest.raises(ForecastingError):
            mase([1.0, 1.0, 1.0], [1.0, 1.0, 1.0], season_length=1)


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(
        st.tuples(
            st.floats(-100, 100, allow_nan=False),
            st.floats(-100, 100, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_smape_always_in_unit_interval(values):
    actual = [a for a, _ in values]
    predicted = [p for _, p in values]
    assert 0.0 <= smape(actual, predicted) <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    actual=st.lists(st.floats(-50, 50, allow_nan=False), min_size=1, max_size=20)
)
def test_zero_error_for_identical_series(actual):
    assert smape(actual, actual) == 0.0
    assert mae(actual, actual) == 0.0
    assert rmse(actual, actual) == 0.0
